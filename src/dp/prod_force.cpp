#include "dp/prod_force.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/simd.hpp"
#include "common/soa.hpp"
#include "common/team.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace dp::core {

namespace {
/// f_l = sum_c g_rmat[c] * deriv[c][l] — the pair gradient dE/d(r_j - r_i).
inline Vec3 slot_pair_gradient(const double* g_row, const double* d_row) {
  Vec3 f{};
  for (int c = 0; c < 4; ++c) {
    const double g = g_row[c];
    f.x += g * d_row[3 * c + 0];
    f.y += g * d_row[3 * c + 1];
    f.z += g * d_row[3 * c + 2];
  }
  return f;
}

/// Slots walked per batched pair-gradient call; the f buffer lives on the
/// stack so the scatter loop stays allocation-free.
constexpr int kSlotChunk = 64;

#if DP_SIMD_X86
/// Batched form of slot_pair_gradient over a run of contiguous slots, with
/// explicit AoS->SoA staging (paper Fig 5): the stride-12 deriv rows and the
/// stride-4 g_rmat rows are transposed into 12 + 4 contiguous lane streams
/// on the stack, the 4x3 dots run as vertical vector FMAs over the slot
/// lanes, and the force triples interleave back at the end. The rounding
/// sequence per slot (mul then three FMAs per component) is exactly the old
/// per-slot std::fma chain, so the vector levels keep their bits. Results
/// are per-slot independent — the deterministic lane fold is unaffected.
DP_TARGET_AVX2 void slot_pair_gradients_avx2(const double* g_rows, const double* d_rows,
                                             int cnt, double* f) {
  using namespace simd;
  alignas(64) double ds[kDerivWidth * kSlotChunk];
  alignas(64) double gs[4 * kSlotChunk];
  alignas(64) double fxs[kSlotChunk], fys[kSlotChunk], fzs[kSlotChunk];
  const std::size_t n = static_cast<std::size_t>(cnt);
  aos_to_soa_deriv(d_rows, ds, n);
  aos_to_soa_reference(g_rows, gs, n, 4);
  int k = 0;
  for (; k + 4 <= cnt; k += 4) {
    const v4d g0 = v4_loadu(gs + 0 * n + k), g1 = v4_loadu(gs + 1 * n + k),
              g2 = v4_loadu(gs + 2 * n + k), g3 = v4_loadu(gs + 3 * n + k);
    v4d fx = v4_mul(g0, v4_loadu(ds + 0 * n + k));
    fx = v4_fmadd(g1, v4_loadu(ds + 3 * n + k), fx);
    fx = v4_fmadd(g2, v4_loadu(ds + 6 * n + k), fx);
    fx = v4_fmadd(g3, v4_loadu(ds + 9 * n + k), fx);
    v4d fy = v4_mul(g0, v4_loadu(ds + 1 * n + k));
    fy = v4_fmadd(g1, v4_loadu(ds + 4 * n + k), fy);
    fy = v4_fmadd(g2, v4_loadu(ds + 7 * n + k), fy);
    fy = v4_fmadd(g3, v4_loadu(ds + 10 * n + k), fy);
    v4d fz = v4_mul(g0, v4_loadu(ds + 2 * n + k));
    fz = v4_fmadd(g1, v4_loadu(ds + 5 * n + k), fz);
    fz = v4_fmadd(g2, v4_loadu(ds + 8 * n + k), fz);
    fz = v4_fmadd(g3, v4_loadu(ds + 11 * n + k), fz);
    v4_storeu(fxs + k, fx);
    v4_storeu(fys + k, fy);
    v4_storeu(fzs + k, fz);
  }
  for (; k < cnt; ++k) {
    double fx = gs[0 * n + k] * ds[0 * n + k];
    fx = std::fma(gs[1 * n + k], ds[3 * n + k], fx);
    fx = std::fma(gs[2 * n + k], ds[6 * n + k], fx);
    fx = std::fma(gs[3 * n + k], ds[9 * n + k], fx);
    double fy = gs[0 * n + k] * ds[1 * n + k];
    fy = std::fma(gs[1 * n + k], ds[4 * n + k], fy);
    fy = std::fma(gs[2 * n + k], ds[7 * n + k], fy);
    fy = std::fma(gs[3 * n + k], ds[10 * n + k], fy);
    double fz = gs[0 * n + k] * ds[2 * n + k];
    fz = std::fma(gs[1 * n + k], ds[5 * n + k], fz);
    fz = std::fma(gs[2 * n + k], ds[8 * n + k], fz);
    fz = std::fma(gs[3 * n + k], ds[11 * n + k], fz);
    fxs[k] = fx;
    fys[k] = fy;
    fzs[k] = fz;
  }
  for (k = 0; k < cnt; ++k) {
    f[3 * k + 0] = fxs[k];
    f[3 * k + 1] = fys[k];
    f[3 * k + 2] = fzs[k];
  }
}

DP_TARGET_AVX512 void slot_pair_gradients_avx512(const double* g_rows, const double* d_rows,
                                                 int cnt, double* f) {
  using namespace simd;
  alignas(64) double ds[kDerivWidth * kSlotChunk];
  alignas(64) double gs[4 * kSlotChunk];
  alignas(64) double fxs[kSlotChunk], fys[kSlotChunk], fzs[kSlotChunk];
  const std::size_t n = static_cast<std::size_t>(cnt);
  aos_to_soa_deriv(d_rows, ds, n);
  aos_to_soa_reference(g_rows, gs, n, 4);
  int k = 0;
  for (; k + 8 <= cnt; k += 8) {
    const v8d g0 = v8_loadu(gs + 0 * n + k), g1 = v8_loadu(gs + 1 * n + k),
              g2 = v8_loadu(gs + 2 * n + k), g3 = v8_loadu(gs + 3 * n + k);
    v8d fx = v8_mul(g0, v8_loadu(ds + 0 * n + k));
    fx = v8_fmadd(g1, v8_loadu(ds + 3 * n + k), fx);
    fx = v8_fmadd(g2, v8_loadu(ds + 6 * n + k), fx);
    fx = v8_fmadd(g3, v8_loadu(ds + 9 * n + k), fx);
    v8d fy = v8_mul(g0, v8_loadu(ds + 1 * n + k));
    fy = v8_fmadd(g1, v8_loadu(ds + 4 * n + k), fy);
    fy = v8_fmadd(g2, v8_loadu(ds + 7 * n + k), fy);
    fy = v8_fmadd(g3, v8_loadu(ds + 10 * n + k), fy);
    v8d fz = v8_mul(g0, v8_loadu(ds + 2 * n + k));
    fz = v8_fmadd(g1, v8_loadu(ds + 5 * n + k), fz);
    fz = v8_fmadd(g2, v8_loadu(ds + 8 * n + k), fz);
    fz = v8_fmadd(g3, v8_loadu(ds + 11 * n + k), fz);
    v8_storeu(fxs + k, fx);
    v8_storeu(fys + k, fy);
    v8_storeu(fzs + k, fz);
  }
  for (; k < cnt; ++k) {
    double fx = gs[0 * n + k] * ds[0 * n + k];
    fx = std::fma(gs[1 * n + k], ds[3 * n + k], fx);
    fx = std::fma(gs[2 * n + k], ds[6 * n + k], fx);
    fx = std::fma(gs[3 * n + k], ds[9 * n + k], fx);
    double fy = gs[0 * n + k] * ds[1 * n + k];
    fy = std::fma(gs[1 * n + k], ds[4 * n + k], fy);
    fy = std::fma(gs[2 * n + k], ds[7 * n + k], fy);
    fy = std::fma(gs[3 * n + k], ds[10 * n + k], fy);
    double fz = gs[0 * n + k] * ds[2 * n + k];
    fz = std::fma(gs[1 * n + k], ds[5 * n + k], fz);
    fz = std::fma(gs[2 * n + k], ds[8 * n + k], fz);
    fz = std::fma(gs[3 * n + k], ds[11 * n + k], fz);
    fxs[k] = fx;
    fys[k] = fy;
    fzs[k] = fz;
  }
  for (k = 0; k < cnt; ++k) {
    f[3 * k + 0] = fxs[k];
    f[3 * k + 1] = fys[k];
    f[3 * k + 2] = fzs[k];
  }
}
#endif

using SlotBatchFn = void (*)(const double*, const double*, int, double*);

/// nullptr at Level::Scalar — the caller keeps the seed per-slot loop.
SlotBatchFn pick_slot_batch(simd::Level lvl) {
#if DP_SIMD_X86
  if (lvl == simd::Level::AVX512) return slot_pair_gradients_avx512;
  if (lvl == simd::Level::AVX2) return slot_pair_gradients_avx2;
#else
  (void)lvl;
#endif
  return nullptr;
}

}  // namespace

void prod_force_virial(const EnvMat& env, const double* g_rmat, const md::Box& box,
                       const md::Atoms& atoms, bool periodic, std::vector<Vec3>& forces,
                       Mat3& virial, ProdForceWorkspace& ws) {
  WallTimer timer;
  const std::size_t n = env.n_atoms;
  const std::size_t n_total = forces.size();
  ws.lane_force.resize(static_cast<std::size_t>(kProdForceLanes) * n_total * 3);

  const int team_size = std::max(1, omp_get_max_threads());
  // SIMD level resolved once per call, outside the team region: every lane
  // walks its slots with the same kernel regardless of thread count.
  const SlotBatchFn slot_batch = pick_slot_batch(simd::active());
  BuildTeam& team = BuildTeam::team();
  auto body = [&](int t, int T) {
    // ---- Phase 1: each thread runs a contiguous range of LANES. A lane
    // walks a fixed contiguous range of centers (chunked by kProdForceLanes,
    // not by T): the center's own force is written directly (lanes partition
    // centers, so those writes are disjoint), neighbor scatters land in the
    // lane-private buffer, and the lane's virial accumulates separately.
    const int lane_begin = static_cast<int>(chunk_bound(kProdForceLanes, t, T));
    const int lane_end = static_cast<int>(chunk_bound(kProdForceLanes, t + 1, T));
    for (int lane = lane_begin; lane < lane_end; ++lane) {
      double* buf = ws.lane_force.data() + static_cast<std::size_t>(lane) * n_total * 3;
      std::memset(buf, 0, n_total * 3 * sizeof(double));
      Mat3 w{};
      const std::size_t begin = chunk_bound(n, lane, kProdForceLanes);
      const std::size_t end = chunk_bound(n, lane + 1, kProdForceLanes);
      for (std::size_t i = begin; i < end; ++i) {
        const Vec3 ri = atoms.pos[i];
        Vec3 fi{};
        for (int ty = 0; ty < env.ntypes; ++ty) {
          const std::size_t s0 = env.block_begin(i, ty);
          const int cnt = env.count(i, ty);
          for (int k0 = 0; k0 < cnt; k0 += kSlotChunk) {
            const int nk = std::min(kSlotChunk, cnt - k0);
            const std::size_t sb = s0 + static_cast<std::size_t>(k0);
            double fbuf[3 * kSlotChunk];
            if (slot_batch != nullptr) {
              slot_batch(g_rmat + sb * 4, env.deriv_at(sb), nk, fbuf);
            } else {
              for (int k = 0; k < nk; ++k) {
                const std::size_t s = sb + static_cast<std::size_t>(k);
                const Vec3 fk = slot_pair_gradient(g_rmat + s * 4, env.deriv_at(s));
                fbuf[3 * k + 0] = fk.x;
                fbuf[3 * k + 1] = fk.y;
                fbuf[3 * k + 2] = fk.z;
              }
            }
            for (int k = 0; k < nk; ++k) {
              const std::size_t s = sb + static_cast<std::size_t>(k);
              const std::size_t j = static_cast<std::size_t>(env.atom_of(s));
              const Vec3 f{fbuf[3 * k + 0], fbuf[3 * k + 1], fbuf[3 * k + 2]};
              // E depends on d = r_j - r_i:  F_i = +dE/dd, F_j = -dE/dd.
              fi += f;
              buf[j * 3 + 0] -= f.x;
              buf[j * 3 + 1] -= f.y;
              buf[j * 3 + 2] -= f.z;
              Vec3 d;
              if (env.compact()) {
                // Displacement carried through the CSR — no second min_image.
                const double* dd = env.diff_at(s);
                d = {dd[0], dd[1], dd[2]};
              } else {
                d = atoms.pos[j] - ri;
                if (periodic) d = box.min_image(d);
              }
              // W += r_ij (x) f_ij with r_ij = r_i - r_j = -d, f_ij = +f on i.
              w += outer(d, f) * (-1.0);
            }
          }
        }
        forces[i] += fi;
      }
      ws.lane_virial[static_cast<std::size_t>(lane)] = w;
    }
    team.barrier();  // every lane buffer complete before any fold reads it
    // ---- Phase 2: threads partition ATOMS; each atom's force folds the 16
    // lane buffers in ascending lane order — an order independent of T.
    const std::size_t a_begin = chunk_bound(n_total, t, T);
    const std::size_t a_end = chunk_bound(n_total, t + 1, T);
    for (std::size_t a = a_begin; a < a_end; ++a) {
      double fx = 0.0, fy = 0.0, fz = 0.0;
      for (int lane = 0; lane < kProdForceLanes; ++lane) {
        const double* buf = ws.lane_force.data() + static_cast<std::size_t>(lane) * n_total * 3;
        fx += buf[a * 3 + 0];
        fy += buf[a * 3 + 1];
        fz += buf[a * 3 + 2];
      }
      forces[a] += Vec3{fx, fy, fz};
    }
  };
  team.run(team_size, BodyRef(body));

  // Lane virials fold on the master, again in ascending lane order.
  for (int lane = 0; lane < kProdForceLanes; ++lane)
    virial += ws.lane_virial[static_cast<std::size_t>(lane)];

  static obs::Histogram& seconds =
      obs::MetricsRegistry::instance().histogram("prod_force.seconds");
  seconds.observe(timer.seconds());
}

}  // namespace dp::core
