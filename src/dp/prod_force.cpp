#include "dp/prod_force.hpp"

#include <omp.h>

#include <algorithm>
#include <cstring>

#include "common/team.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace dp::core {

namespace {
/// f_l = sum_c g_rmat[c] * deriv[c][l] — the pair gradient dE/d(r_j - r_i).
inline Vec3 slot_pair_gradient(const double* g_row, const double* d_row) {
  Vec3 f{};
  for (int c = 0; c < 4; ++c) {
    const double g = g_row[c];
    f.x += g * d_row[3 * c + 0];
    f.y += g * d_row[3 * c + 1];
    f.z += g * d_row[3 * c + 2];
  }
  return f;
}
}  // namespace

void prod_force_virial(const EnvMat& env, const double* g_rmat, const md::Box& box,
                       const md::Atoms& atoms, bool periodic, std::vector<Vec3>& forces,
                       Mat3& virial, ProdForceWorkspace& ws) {
  WallTimer timer;
  const std::size_t n = env.n_atoms;
  const std::size_t n_total = forces.size();
  ws.lane_force.resize(static_cast<std::size_t>(kProdForceLanes) * n_total * 3);

  const int team_size = std::max(1, omp_get_max_threads());
  BuildTeam& team = BuildTeam::team();
  auto body = [&](int t, int T) {
    // ---- Phase 1: each thread runs a contiguous range of LANES. A lane
    // walks a fixed contiguous range of centers (chunked by kProdForceLanes,
    // not by T): the center's own force is written directly (lanes partition
    // centers, so those writes are disjoint), neighbor scatters land in the
    // lane-private buffer, and the lane's virial accumulates separately.
    const int lane_begin = static_cast<int>(chunk_bound(kProdForceLanes, t, T));
    const int lane_end = static_cast<int>(chunk_bound(kProdForceLanes, t + 1, T));
    for (int lane = lane_begin; lane < lane_end; ++lane) {
      double* buf = ws.lane_force.data() + static_cast<std::size_t>(lane) * n_total * 3;
      std::memset(buf, 0, n_total * 3 * sizeof(double));
      Mat3 w{};
      const std::size_t begin = chunk_bound(n, lane, kProdForceLanes);
      const std::size_t end = chunk_bound(n, lane + 1, kProdForceLanes);
      for (std::size_t i = begin; i < end; ++i) {
        const Vec3 ri = atoms.pos[i];
        Vec3 fi{};
        for (int ty = 0; ty < env.ntypes; ++ty) {
          const std::size_t s0 = env.block_begin(i, ty);
          const int cnt = env.count(i, ty);
          for (int k = 0; k < cnt; ++k) {
            const std::size_t s = s0 + static_cast<std::size_t>(k);
            const std::size_t j = static_cast<std::size_t>(env.atom_of(s));
            const Vec3 f = slot_pair_gradient(g_rmat + s * 4, env.deriv_at(s));
            // E depends on d = r_j - r_i:  F_i = +dE/dd, F_j = -dE/dd.
            fi += f;
            buf[j * 3 + 0] -= f.x;
            buf[j * 3 + 1] -= f.y;
            buf[j * 3 + 2] -= f.z;
            Vec3 d;
            if (env.compact()) {
              // Displacement carried through the CSR — no second min_image.
              const double* dd = env.diff_at(s);
              d = {dd[0], dd[1], dd[2]};
            } else {
              d = atoms.pos[j] - ri;
              if (periodic) d = box.min_image(d);
            }
            // W += r_ij (x) f_ij with r_ij = r_i - r_j = -d and f_ij = +f on i.
            w += outer(d, f) * (-1.0);
          }
        }
        forces[i] += fi;
      }
      ws.lane_virial[static_cast<std::size_t>(lane)] = w;
    }
    team.barrier();  // every lane buffer complete before any fold reads it
    // ---- Phase 2: threads partition ATOMS; each atom's force folds the 16
    // lane buffers in ascending lane order — an order independent of T.
    const std::size_t a_begin = chunk_bound(n_total, t, T);
    const std::size_t a_end = chunk_bound(n_total, t + 1, T);
    for (std::size_t a = a_begin; a < a_end; ++a) {
      double fx = 0.0, fy = 0.0, fz = 0.0;
      for (int lane = 0; lane < kProdForceLanes; ++lane) {
        const double* buf = ws.lane_force.data() + static_cast<std::size_t>(lane) * n_total * 3;
        fx += buf[a * 3 + 0];
        fy += buf[a * 3 + 1];
        fz += buf[a * 3 + 2];
      }
      forces[a] += Vec3{fx, fy, fz};
    }
  };
  team.run(team_size, BodyRef(body));

  // Lane virials fold on the master, again in ascending lane order.
  for (int lane = 0; lane < kProdForceLanes; ++lane)
    virial += ws.lane_virial[static_cast<std::size_t>(lane)];

  static obs::Histogram& seconds =
      obs::MetricsRegistry::instance().histogram("prod_force.seconds");
  seconds.observe(timer.seconds());
}

}  // namespace dp::core
