// The baseline inference path — the flat "current state-of-the-art" of
// Ref [20] that this paper optimizes against.
//
// Execution per force call (Fig 1 (e)):
//   1. environment matrices (padded to N_m rows);
//   2. the embedding net is run as a batched GEMM pipeline over EVERY slot
//      (padding included), materializing the embedding matrix G
//      (n_atoms x N_m x M — the >95%-of-memory buffer);
//   3. per atom: A = (1/N_m) R~^T G, descriptor D = A<^T A, fitting net;
//   4. reverse mode back through the descriptor and the embedding net
//      (again GEMM-shaped over all slots) to dE/dR~;
//   5. ProdForceSeA / ProdVirialSeA scatter.
#pragma once

#include <vector>

#include "dp/dp_model.hpp"
#include "dp/env_mat.hpp"
#include "md/force_field.hpp"

namespace dp::core {

class BaselineDP final : public md::ForceField {
 public:
  explicit BaselineDP(const DPModel& model, EnvMatKernel env_kernel = EnvMatKernel::Optimized);

  md::ForceResult compute(const md::Box& box, md::Atoms& atoms, const md::NeighborList& nlist,
                          bool periodic = true) override;
  double cutoff() const override { return model_.config().rcut; }

  /// Per-atom energies of the last compute() (Fig 2 needs them).
  const std::vector<double>& atom_energies() const { return atom_energy_; }
  /// Environment matrix of the last compute(), exposed for tests/benches.
  const EnvMat& env() const { return env_; }
  /// Bytes of embedding-matrix storage the last compute() materialized
  /// (G plus the retained workspace for backward) — the paper's memory story.
  std::size_t embedding_bytes() const { return embedding_bytes_; }

 private:
  const DPModel& model_;
  EnvMatKernel env_kernel_;
  EnvMat env_;
  std::vector<double> atom_energy_;
  std::size_t embedding_bytes_ = 0;
};

}  // namespace dp::core
