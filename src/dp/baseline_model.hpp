// The baseline inference path — the flat "current state-of-the-art" of
// Ref [20] that this paper optimizes against.
//
// Execution per force call (Fig 1 (e)):
//   1. environment matrices (dense padded or compact CSR, by env_kernel);
//   2. the embedding net is run as a batched GEMM pipeline over every stored
//      slot, materializing the embedding matrix G (the >95%-of-memory
//      buffer — n_atoms x N_m x M when dense, filled-slots x M when compact);
//   3. per atom: A = (1/N_m) R~^T G, descriptor D = A<^T A, fitting net;
//   4. reverse mode back through the descriptor and the embedding net
//      (again GEMM-shaped) to dE/dR~;
//   5. ProdForceSeA / ProdVirialSeA scatter.
//
// All scratch lives in persistent, grow-only members sized by prepare(), so
// steady-state compute() calls allocate nothing.
#pragma once

#include <vector>

#include "dp/descriptor.hpp"
#include "dp/dp_model.hpp"
#include "dp/env_mat.hpp"
#include "dp/prod_force.hpp"
#include "md/force_field.hpp"
#include "nn/embedding_net.hpp"

namespace dp::core {

class BaselineDP final : public md::ForceField {
 public:
  explicit BaselineDP(const DPModel& model, EnvMatKernel env_kernel = EnvMatKernel::Optimized);

  md::ForceResult compute(const md::Box& box, md::Atoms& atoms, const md::NeighborList& nlist,
                          bool periodic = true) override;
  double cutoff() const override { return model_.config().rcut; }
  std::size_t neighbor_reservation() const override {
    return static_cast<std::size_t>(model_.config().nm());
  }

  /// Per-atom energies of the last compute() (Fig 2 needs them).
  const std::vector<double>& atom_energies() const { return atom_energy_; }
  /// Environment matrix of the last compute(), exposed for tests/benches.
  const EnvMat& env() const { return env_; }
  /// Bytes of embedding-matrix storage the last compute() materialized
  /// (G plus the retained workspace for backward) — the paper's memory story.
  std::size_t embedding_bytes() const { return embedding_bytes_; }
  /// Capacity-based bytes of every persistent buffer this model owns; a
  /// plateau across steps certifies the allocation-free steady state.
  std::size_t workspace_bytes() const;

 private:
  /// Grow-only sizing of every buffer compute() touches; called right after
  /// the env build (row layout depends on the built counts).
  void prepare(std::size_t n);
  /// First G row of atom i within type t's embedding batch.
  std::size_t row_of(int t, std::size_t i) const {
    return row_off_[static_cast<std::size_t>(t) * (env_.n_atoms + 1) + i];
  }
  /// G rows atom i contributes for type t (dense batches keep padded rows —
  /// the fixed GEMM shape IS the baseline; compact batches hold real ones).
  int rows_of(std::size_t i, int t) const {
    return env_.compact() ? env_.count(i, t)
                          : model_.config().sel[static_cast<std::size_t>(t)];
  }

  const DPModel& model_;
  EnvMatKernel env_kernel_;
  EnvMat env_;
  EnvMatWorkspace env_ws_;
  ProdForceWorkspace prod_ws_;
  AlignedVector<double> g_rmat_;  ///< dE/dR~ per stored slot (4 per slot)
  std::vector<nn::Matrix> g_by_type_;
  std::vector<nn::EmbeddingNet::BatchWorkspace> ws_by_type_;
  std::vector<nn::Matrix> g_g_by_type_;
  AlignedVector<double> s_buf_, g_s_, a_mat_, g_a_;
  AtomKernelScratch scratch_;
  std::vector<std::size_t> row_off_;  ///< ntypes * (n + 1) per-type row prefix
  std::vector<double> atom_energy_;
  std::size_t embedding_bytes_ = 0;
};

}  // namespace dp::core
