#include "dp/env_mat.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "dp/switch_fn.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dp::core {

double EnvMat::padding_fraction() const {
  if (n_atoms == 0 || nm == 0) return 0.0;
  std::size_t filled = 0;
  for (int c : count_by_type) filled += static_cast<std::size_t>(c);
  return 1.0 - static_cast<double>(filled) / (static_cast<double>(n_atoms) * nm);
}

namespace {

struct Candidate {
  double r2;
  int atom;
  Vec3 d;
  bool operator<(const Candidate& o) const {
    return r2 != o.r2 ? r2 < o.r2 : atom < o.atom;
  }
};

// Writes the 4 rmat entries and the 12 derivative entries of one slot.
inline void fill_slot(double* rrow, double* drow, const Vec3& d, double r2, double rcut_smth,
                      double rcut) {
  const double r = std::sqrt(r2);
  const auto sw = switch_fn(r, rcut_smth, rcut);
  const double inv_r = 1.0 / r;
  const Vec3 u = d * inv_r;
  rrow[0] = sw.s;
  rrow[1] = sw.s * u.x;
  rrow[2] = sw.s * u.y;
  rrow[3] = sw.s * u.z;
  // c = 0: d s / d d_l = s' u_l
  drow[0] = sw.ds_dr * u.x;
  drow[1] = sw.ds_dr * u.y;
  drow[2] = sw.ds_dr * u.z;
  // c = k: d (s u_k) / d d_l = s' u_k u_l + (s/r) (delta_kl - u_k u_l)
  const double s_over_r = sw.s * inv_r;
  const double uk[3] = {u.x, u.y, u.z};
  for (int k = 0; k < 3; ++k)
    for (int l = 0; l < 3; ++l) {
      const double kron = (k == l) ? 1.0 : 0.0;
      drow[3 * (k + 1) + l] = sw.ds_dr * uk[k] * uk[l] + s_over_r * (kron - uk[k] * uk[l]);
    }
}

void build_one_atom(const ModelConfig& cfg, const md::Box& box, const md::Atoms& atoms,
                    std::span<const int> nbrs, std::size_t i, bool periodic, EnvMat& out,
                    std::vector<Candidate>& scratch, std::size_t& overflow) {
  const int nm = cfg.nm();
  const double rc2 = cfg.rcut * cfg.rcut;
  const Vec3 ri = atoms.pos[i];

  // Partition candidates by neighbor type (scratch reused across atoms).
  scratch.clear();
  for (int j : nbrs) {
    Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - ri;
    if (periodic) d = box.min_image(d);
    const double r2 = norm2(d);
    if (r2 < rc2 && r2 > 0.0) scratch.push_back({r2, j, d});
  }
  std::sort(scratch.begin(), scratch.end());

  double* rmat_i = out.rmat.data() + i * static_cast<std::size_t>(nm) * 4;
  double* deriv_i = out.deriv.data() + i * static_cast<std::size_t>(nm) * 12;
  int* slots_i = out.slot_atom.data() + i * static_cast<std::size_t>(nm);
  int* counts_i = out.count_by_type.data() + i * static_cast<std::size_t>(cfg.ntypes);

  for (const auto& c : scratch) {
    const int t = atoms.type[static_cast<std::size_t>(c.atom)];
    int& fill = counts_i[t];
    if (fill >= cfg.sel[static_cast<std::size_t>(t)]) {
      ++overflow;
      continue;
    }
    const int slot = cfg.type_offset(t) + fill;
    fill_slot(rmat_i + 4 * slot, deriv_i + 12 * slot, c.d, c.r2, cfg.rcut_smth, cfg.rcut);
    slots_i[slot] = c.atom;
    ++fill;
  }
}

}  // namespace

void build_env_mat(const ModelConfig& cfg, const md::Box& box, const md::Atoms& atoms,
                   const md::NeighborList& nlist, EnvMat& out, EnvMatKernel kernel,
                   bool periodic) {
  // Counters land in the registry via RAII so both kernel paths (including
  // the baseline early return) are covered; overflow > 0 flags sel[] too
  // small for the density, the paper's main correctness hazard at scale.
  struct BuildRecord {
    const EnvMat& env;
    ~BuildRecord() {
      static obs::Counter& builds = obs::MetricsRegistry::instance().counter("env_mat.builds");
      static obs::Counter& overflow =
          obs::MetricsRegistry::instance().counter("env_mat.overflow");
      builds.inc();
      if (env.overflow > 0) overflow.inc(env.overflow);
    }
  } build_record{out};
  obs::TraceSpan span("env_mat.build", "dp");
  cfg.validate();
  const std::size_t n = nlist.n_centers();
  const int nm = cfg.nm();
  out.n_atoms = n;
  out.nm = nm;
  out.ntypes = cfg.ntypes;
  out.rmat.assign(n * static_cast<std::size_t>(nm) * 4, 0.0);
  out.deriv.assign(n * static_cast<std::size_t>(nm) * 12, 0.0);
  out.slot_atom.assign(n * static_cast<std::size_t>(nm), -1);
  out.count_by_type.assign(n * static_cast<std::size_t>(cfg.ntypes), 0);
  out.type_off.resize(static_cast<std::size_t>(cfg.ntypes) + 1);
  for (int t = 0; t <= cfg.ntypes; ++t)
    out.type_off[static_cast<std::size_t>(t)] = cfg.type_offset(t);
  out.overflow = 0;

  if (kernel == EnvMatKernel::Baseline) {
    // Reference operator, written the way the original ProdEnvMatA was:
    // fresh per-atom containers, candidate distances recomputed from
    // positions at fill time instead of being carried through the sort.
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3 ri = atoms.pos[i];
      const double rc2 = cfg.rcut * cfg.rcut;
      std::vector<std::vector<std::pair<double, int>>> groups(
          static_cast<std::size_t>(cfg.ntypes));
      for (int j : nlist.neighbors(i)) {
        Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - ri;
        if (periodic) d = box.min_image(d);
        const double r2 = norm2(d);
        if (r2 < rc2 && r2 > 0.0)
          groups[static_cast<std::size_t>(atoms.type[static_cast<std::size_t>(j)])]
              .emplace_back(std::sqrt(r2), j);
      }
      double* rmat_i = out.rmat.data() + i * static_cast<std::size_t>(nm) * 4;
      double* deriv_i = out.deriv.data() + i * static_cast<std::size_t>(nm) * 12;
      int* slots_i = out.slot_atom.data() + i * static_cast<std::size_t>(nm);
      for (int t = 0; t < cfg.ntypes; ++t) {
        auto& group = groups[static_cast<std::size_t>(t)];
        std::sort(group.begin(), group.end());
        const int cap = cfg.sel[static_cast<std::size_t>(t)];
        int fill = 0;
        for (const auto& [r, j] : group) {
          if (fill >= cap) {
            ++out.overflow;
            continue;
          }
          // Recompute the displacement (the redundancy the optimized
          // operator removes).
          Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - ri;
          if (periodic) d = box.min_image(d);
          const int slot = cfg.type_offset(t) + fill;
          fill_slot(rmat_i + 4 * slot, deriv_i + 12 * slot, d, norm2(d), cfg.rcut_smth,
                    cfg.rcut);
          slots_i[slot] = j;
          ++fill;
        }
        out.count_by_type[i * static_cast<std::size_t>(cfg.ntypes) +
                          static_cast<std::size_t>(t)] = fill;
      }
    }
    return;
  }

  // Optimized operator: thread-parallel over atoms with thread-local scratch
  // (the GPU version of the paper assigns atoms to thread blocks the same
  // way; shared-memory staging there corresponds to scratch reuse here).
  std::size_t overflow_total = 0;
#pragma omp parallel reduction(+ : overflow_total)
  {
    std::vector<Candidate> scratch;
    scratch.reserve(static_cast<std::size_t>(nm));
    std::size_t overflow_local = 0;
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i)
      build_one_atom(cfg, box, atoms, nlist.neighbors(i), i, periodic, out, scratch,
                     overflow_local);
    overflow_total += overflow_local;
  }
  out.overflow = overflow_total;
}

}  // namespace dp::core
