#include "dp/env_mat.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/team.hpp"
#include "dp/switch_fn.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dp::core {

namespace {
EnvMatThreadStats& mutable_thread_stats() {
  static thread_local EnvMatThreadStats stats;
  return stats;
}
}  // namespace

const EnvMatThreadStats& env_mat_thread_stats() { return mutable_thread_stats(); }

std::size_t EnvMat::filled_slots() const {
  if (compact()) return block_start.empty() ? 0 : block_start.back();
  std::size_t filled = 0;
  for (int c : count_by_type) filled += static_cast<std::size_t>(c);
  return filled;
}

double EnvMat::padding_fraction() const {
  if (n_atoms == 0 || nm == 0) return 0.0;
  return 1.0 - static_cast<double>(filled_slots()) /
                   (static_cast<double>(n_atoms) * static_cast<double>(nm));
}

std::size_t EnvMat::dense_bytes() const {
  const std::size_t slots = n_atoms * static_cast<std::size_t>(nm);
  return slots * (16 * sizeof(double) + sizeof(int)) +
         n_atoms * static_cast<std::size_t>(ntypes) * sizeof(int);
}

std::size_t EnvMat::compact_bytes() const {
  const std::size_t blocks = n_atoms * static_cast<std::size_t>(ntypes);
  return filled_slots() * (19 * sizeof(double) + sizeof(int)) + blocks * sizeof(int) +
         (blocks + 1) * sizeof(std::size_t);
}

std::size_t EnvMat::storage_bytes() const {
  return rmat.capacity() * sizeof(double) + deriv.capacity() * sizeof(double) +
         diff.capacity() * sizeof(double) + slot_atom.capacity() * sizeof(int) +
         count_by_type.capacity() * sizeof(int) + block_start.capacity() * sizeof(std::size_t) +
         type_off.capacity() * sizeof(int);
}

void EnvMat::reset_dense(std::size_t n, const ModelConfig& cfg) {
  layout = EnvMatLayout::Dense;
  n_atoms = n;
  nm = cfg.nm();
  ntypes = cfg.ntypes;
  // The zero fill below is the dense layout's cost, not an accident: padded
  // slots must read as exact zeros (the paper's "redundant zeros").
  rmat.assign(n * static_cast<std::size_t>(nm) * 4, 0.0);
  deriv.assign(n * static_cast<std::size_t>(nm) * 12, 0.0);
  slot_atom.assign(n * static_cast<std::size_t>(nm), -1);
  count_by_type.assign(n * static_cast<std::size_t>(cfg.ntypes), 0);
  type_off.resize(static_cast<std::size_t>(cfg.ntypes) + 1);
  for (int t = 0; t <= cfg.ntypes; ++t)
    type_off[static_cast<std::size_t>(t)] = cfg.type_offset(t);
  overflow = 0;
}

void EnvMat::reset_compact_header(std::size_t n, const ModelConfig& cfg) {
  layout = EnvMatLayout::Compact;
  n_atoms = n;
  nm = cfg.nm();
  ntypes = cfg.ntypes;
  // No zero fill anywhere: counts are fully rewritten by the count phase and
  // the prefix by the scan; slot arrays are sized later by grow_compact_slots.
  count_by_type.resize(n * static_cast<std::size_t>(cfg.ntypes));
  block_start.resize(n * static_cast<std::size_t>(cfg.ntypes) + 1);
  type_off.resize(static_cast<std::size_t>(cfg.ntypes) + 1);
  for (int t = 0; t <= cfg.ntypes; ++t)
    type_off[static_cast<std::size_t>(t)] = cfg.type_offset(t);
  overflow = 0;
}

void EnvMat::grow_compact_slots(std::size_t total) {
  // resize, never assign: no O(slots) zeroing, and capacity only grows.
  rmat.resize(total * 4);
  deriv.resize(total * 12);
  diff.resize(total * 3);
  slot_atom.resize(total);
}

void EnvMatWorkspace::Slab::ensure(std::size_t slot_cap, int ntypes) {
  if (rmat.size() < slot_cap * 4) {
    rmat.resize(slot_cap * 4);
    deriv.resize(slot_cap * 12);
    diff.resize(slot_cap * 3);
    atom.resize(slot_cap);
  }
  if (counts.size() < static_cast<std::size_t>(ntypes)) {
    counts.resize(static_cast<std::size_t>(ntypes));
    cursor.resize(static_cast<std::size_t>(ntypes));
  }
}

std::size_t EnvMatWorkspace::Slab::bytes() const {
  return cand.capacity() * sizeof(EnvCandidate) + rmat.capacity() * sizeof(double) +
         deriv.capacity() * sizeof(double) + diff.capacity() * sizeof(double) +
         atom.capacity() * sizeof(int) + counts.capacity() * sizeof(int) +
         cursor.capacity() * sizeof(int);
}

void EnvMatWorkspace::ensure_threads(int team_size) {
  if (tl.size() < static_cast<std::size_t>(team_size))
    tl.resize(static_cast<std::size_t>(team_size));
}

std::size_t EnvMatWorkspace::bytes() const {
  std::size_t b = tl.capacity() * sizeof(Slab);
  for (const Slab& s : tl) b += s.bytes();
  return b;
}

namespace {

// Writes the 4 rmat entries and the 12 derivative entries of one slot.
inline void fill_slot(double* rrow, double* drow, const Vec3& d, double r2, double rcut_smth,
                      double rcut) {
  const double r = std::sqrt(r2);
  const auto sw = switch_fn(r, rcut_smth, rcut);
  const double inv_r = 1.0 / r;
  const Vec3 u = d * inv_r;
  rrow[0] = sw.s;
  rrow[1] = sw.s * u.x;
  rrow[2] = sw.s * u.y;
  rrow[3] = sw.s * u.z;
  // c = 0: d s / d d_l = s' u_l
  drow[0] = sw.ds_dr * u.x;
  drow[1] = sw.ds_dr * u.y;
  drow[2] = sw.ds_dr * u.z;
  // c = k: d (s u_k) / d d_l = s' u_k u_l + (s/r) (delta_kl - u_k u_l)
  const double s_over_r = sw.s * inv_r;
  const double uk[3] = {u.x, u.y, u.z};
  for (int k = 0; k < 3; ++k)
    for (int l = 0; l < 3; ++l) {
      const double kron = (k == l) ? 1.0 : 0.0;
      drow[3 * (k + 1) + l] = sw.ds_dr * uk[k] * uk[l] + s_over_r * (kron - uk[k] * uk[l]);
    }
}

/// Reference operator, written the way the original ProdEnvMatA was: fresh
/// per-atom containers, candidate distances recomputed from positions at
/// fill time instead of being carried through the sort. Emits the dense
/// padded layout (the caller has already reset it).
void build_dense_reference(const ModelConfig& cfg, const md::Box& box, const md::Atoms& atoms,
                           const md::NeighborList& nlist, bool periodic, EnvMat& out) {
  const std::size_t n = out.n_atoms;
  const int nm = out.nm;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 ri = atoms.pos[i];
    const double rc2 = cfg.rcut * cfg.rcut;
    std::vector<std::vector<std::pair<double, int>>> groups(
        static_cast<std::size_t>(cfg.ntypes));
    for (int j : nlist.neighbors(i)) {
      Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - ri;
      if (periodic) d = box.min_image(d);
      const double r2 = norm2(d);
      if (r2 < rc2 && r2 > 0.0)
        groups[static_cast<std::size_t>(atoms.type[static_cast<std::size_t>(j)])]
            .emplace_back(std::sqrt(r2), j);
    }
    double* rmat_i = out.rmat.data() + i * static_cast<std::size_t>(nm) * 4;
    double* deriv_i = out.deriv.data() + i * static_cast<std::size_t>(nm) * 12;
    int* slots_i = out.slot_atom.data() + i * static_cast<std::size_t>(nm);
    for (int t = 0; t < cfg.ntypes; ++t) {
      auto& group = groups[static_cast<std::size_t>(t)];
      std::sort(group.begin(), group.end());
      const int cap = cfg.sel[static_cast<std::size_t>(t)];
      int fill = 0;
      for (const auto& [r, j] : group) {
        if (fill >= cap) {
          ++out.overflow;
          continue;
        }
        // Recompute the displacement (the redundancy the optimized
        // operator removes).
        Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - ri;
        if (periodic) d = box.min_image(d);
        const int slot = cfg.type_offset(t) + fill;
        fill_slot(rmat_i + 4 * slot, deriv_i + 12 * slot, d, norm2(d), cfg.rcut_smth,
                  cfg.rcut);
        slots_i[slot] = j;
        ++fill;
      }
      out.count_by_type[i * static_cast<std::size_t>(cfg.ntypes) + static_cast<std::size_t>(t)] =
          fill;
    }
  }
}

/// Compact CSR build: count -> scan -> fill, parallel over contiguous atom
/// chunks with per-thread staging slabs (paper Sec 3.4.2's redundancy
/// removal applied to the operator's OUTPUT, not just its inner loops).
///
/// Happens-before / determinism argument (see docs/STATIC_ANALYSIS.md): the
/// count-and-stage phase writes disjoint count_by_type rows and
/// thread-private slabs; a barrier orders every count before the thread-0
/// prefix scan; a second barrier orders the scan (and the slot-array resize)
/// before the slab copies, which target disjoint [block_start[begin * nt],
/// block_start[end * nt]) ranges by chunk contiguity. Slot CONTENT depends
/// only on per-atom data, and the concatenation in atom order is what the
/// scan encodes — so the output is byte-identical at any thread count.
void build_compact(const ModelConfig& cfg, const md::Box& box, const md::Atoms& atoms,
                   const md::NeighborList& nlist, EnvMat& out, EnvMatWorkspace& ws,
                   bool periodic) {
  const std::size_t n = nlist.n_centers();
  const std::size_t nt = static_cast<std::size_t>(cfg.ntypes);
  const std::size_t nm = static_cast<std::size_t>(cfg.nm());
  const double rc2 = cfg.rcut * cfg.rcut;
  const int team_size = std::max(1, omp_get_max_threads());
  ws.ensure_threads(team_size);
  out.reset_compact_header(n, cfg);

  BuildTeam& team = BuildTeam::team();
  auto body = [&](int t, int T) {
    EnvMatWorkspace::Slab& slab = ws.tl[static_cast<std::size_t>(t)];
    const std::size_t begin = chunk_bound(n, t, T);
    const std::size_t end = chunk_bound(n, t + 1, T);
    // Stage capacity: each atom fills at most min(|nbrs|, nm) slots.
    std::size_t cap = 0;
    for (std::size_t i = begin; i < end; ++i)
      cap += std::min(nlist.neighbors(i).size(), nm);
    slab.ensure(cap, cfg.ntypes);
    slab.n_slots = 0;
    slab.overflow = 0;

    for (std::size_t i = begin; i < end; ++i) {
      const Vec3 ri = atoms.pos[i];
      slab.cand.clear();
      for (int j : nlist.neighbors(i)) {
        Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - ri;
        if (periodic) d = box.min_image(d);
        const double r2 = norm2(d);
        if (r2 < rc2 && r2 > 0.0) slab.cand.push_back({r2, j, d});
      }
      std::sort(slab.cand.begin(), slab.cand.end());

      // Count per type, cap at sel[], scan into atom-local block offsets.
      std::fill(slab.counts.begin(), slab.counts.end(), 0);
      for (const EnvCandidate& c : slab.cand)
        ++slab.counts[static_cast<std::size_t>(atoms.type[static_cast<std::size_t>(c.atom)])];
      int fill_total = 0;
      for (std::size_t ty = 0; ty < nt; ++ty) {
        const int capped = std::min(slab.counts[ty], cfg.sel[ty]);
        slab.overflow += static_cast<std::size_t>(slab.counts[ty] - capped);
        slab.counts[ty] = capped;  // remaining per-type quota for the fill walk
        slab.cursor[ty] = fill_total;
        fill_total += capped;
        out.count_by_type[i * nt + ty] = capped;
      }

      // Fill: candidates arrive distance-sorted, so the first `capped` of
      // each type land in the block — the nearest ones, exactly the dense
      // reference's insertion order.
      for (const EnvCandidate& c : slab.cand) {
        const std::size_t ty =
            static_cast<std::size_t>(atoms.type[static_cast<std::size_t>(c.atom)]);
        if (slab.counts[ty] == 0) continue;  // quota spent: farthest are dropped
        --slab.counts[ty];
        const std::size_t s =
            slab.n_slots + static_cast<std::size_t>(slab.cursor[ty]++);
        fill_slot(slab.rmat.data() + 4 * s, slab.deriv.data() + 12 * s, c.d, c.r2,
                  cfg.rcut_smth, cfg.rcut);
        slab.atom[s] = c.atom;
        slab.diff[3 * s + 0] = c.d.x;
        slab.diff[3 * s + 1] = c.d.y;
        slab.diff[3 * s + 2] = c.d.z;
      }
      slab.n_slots += static_cast<std::size_t>(fill_total);
    }

    team.barrier();
    if (t == 0) {
      std::size_t run = 0;
      for (std::size_t idx = 0; idx < n * nt; ++idx) {
        out.block_start[idx] = run;
        run += static_cast<std::size_t>(out.count_by_type[idx]);
      }
      out.block_start[n * nt] = run;
      out.grow_compact_slots(run);
    }
    team.barrier();  // scan + resize visible to every slab copy below
    if (slab.n_slots > 0) {
      const std::size_t dst = out.block_start[begin * nt];
      std::memcpy(out.rmat.data() + dst * 4, slab.rmat.data(),
                  slab.n_slots * 4 * sizeof(double));
      std::memcpy(out.deriv.data() + dst * 12, slab.deriv.data(),
                  slab.n_slots * 12 * sizeof(double));
      std::memcpy(out.diff.data() + dst * 3, slab.diff.data(),
                  slab.n_slots * 3 * sizeof(double));
      std::memcpy(out.slot_atom.data() + dst, slab.atom.data(), slab.n_slots * sizeof(int));
    }
  };
  team.run(team_size, BodyRef(body));

  std::size_t overflow_total = 0;
  for (int t = 0; t < team_size; ++t) overflow_total += ws.tl[static_cast<std::size_t>(t)].overflow;
  out.overflow = overflow_total;
}

}  // namespace

void build_env_mat(const ModelConfig& cfg, const md::Box& box, const md::Atoms& atoms,
                   const md::NeighborList& nlist, EnvMat& out, EnvMatWorkspace& ws,
                   EnvMatKernel kernel, bool periodic) {
  // Counters land in the registry via RAII so both kernel paths are covered;
  // overflow > 0 flags sel[] too small for the density, the paper's main
  // correctness hazard at scale.
  struct BuildRecord {
    const EnvMat& env;
    ~BuildRecord() {
      static obs::Counter& builds = obs::MetricsRegistry::instance().counter("env_mat.builds");
      static obs::Counter& overflow =
          obs::MetricsRegistry::instance().counter("env_mat.overflow");
      static obs::Gauge& dense_gauge =
          obs::MetricsRegistry::instance().gauge("env_mat.dense_bytes");
      static obs::Gauge& compact_gauge =
          obs::MetricsRegistry::instance().gauge("env_mat.compact_bytes");
      builds.inc();
      if (env.overflow > 0) overflow.inc(env.overflow);
      // Both gauges every build: what each layout costs for THIS system,
      // whichever one was materialized — the Fig 3 memory comparison.
      EnvMatThreadStats& stats = mutable_thread_stats();
      stats.dense_bytes = env.dense_bytes();
      stats.compact_bytes = env.compact_bytes();
      dense_gauge.set(static_cast<double>(stats.dense_bytes));
      compact_gauge.set(static_cast<double>(stats.compact_bytes));
    }
  } build_record{out};
  obs::TraceSpan span("env_mat.build", "dp");
  cfg.validate();
  const std::size_t n = nlist.n_centers();

  if (kernel == EnvMatKernel::Baseline) {
    out.reset_dense(n, cfg);
    build_dense_reference(cfg, box, atoms, nlist, periodic, out);
    return;
  }
  build_compact(cfg, box, atoms, nlist, out, ws, periodic);
}

}  // namespace dp::core
