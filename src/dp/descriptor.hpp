// The symmetry-preserving descriptor D = (G<)^T R~ R~^T G (paper Eq. 2) in
// its contracted form: with A = (1/N_m) R~^T G (4 x M) and A< its first M<
// columns, D = A<^T A (M< x M).
//
// Every inference path (baseline / compressed / fused) funnels through these
// two kernels, so they are the single point of truth for the descriptor
// algebra and its adjoint.
#pragma once

#include <cstddef>

#include "nn/fitting_net.hpp"

namespace dp::core {

/// d_flat[a * m + b] = sum_c a_mat[c * m + a_col(a)] * a_mat[c * m + b],
/// a < m_sub, b < m; a_mat is the 4 x m matrix A (row-major).
void descriptor_forward(const double* a_mat, std::size_t m, std::size_t m_sub, double* d_flat);

/// Adjoint: g_a (4 x m) from g_d (m_sub x m) and A.
///   g_A[c][q] = sum_{a < m_sub} g_d[a][q] A[c][a]
///             + (q < m_sub ? sum_b g_d[q][b] A[c][b] : 0)
void descriptor_backward(const double* a_mat, const double* g_d, std::size_t m,
                         std::size_t m_sub, double* g_a);

/// Scratch for descriptor_fit_atom, reused across atoms.
struct AtomKernelScratch {
  nn::FittingNet::Workspace fit_ws;
  std::vector<double> d_flat, g_d;
};

/// The shared middle of every inference path: from the (already 1/N_m
/// scaled) A matrix of one atom to its energy and the scaled gradient
/// g_a = dE/dA * scale (ready to contract against R~ and G rows).
double descriptor_fit_atom(const nn::FittingNet& fit, const double* a_mat, std::size_t m,
                           std::size_t m_sub, double scale, AtomKernelScratch& scratch,
                           double* g_a);

}  // namespace dp::core
