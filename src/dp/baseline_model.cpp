#include "dp/baseline_model.hpp"

#include <algorithm>
#include <cstring>

#include "common/cost.hpp"
#include "common/timer.hpp"
#include "nn/gemm.hpp"

namespace dp::core {

BaselineDP::BaselineDP(const DPModel& model, EnvMatKernel env_kernel)
    : model_(model), env_kernel_(env_kernel) {}

void BaselineDP::prepare(std::size_t n) {
  const ModelConfig& cfg = model_.config();
  const std::size_t m = cfg.m();
  const std::size_t nt = static_cast<std::size_t>(cfg.ntypes);
  atom_energy_.resize(n);
  g_rmat_.resize(env_.stored_slots() * 4);
  g_by_type_.resize(nt);
  ws_by_type_.resize(nt);
  g_g_by_type_.resize(nt);
  row_off_.resize(nt * (n + 1));
  std::size_t max_rows = 0;
  for (std::size_t t = 0; t < nt; ++t) {
    std::size_t run = 0;
    for (std::size_t i = 0; i < n; ++i) {
      row_off_[t * (n + 1) + i] = run;
      run += static_cast<std::size_t>(rows_of(i, static_cast<int>(t)));
    }
    row_off_[t * (n + 1) + n] = run;
    g_g_by_type_[t].resize(run, m);
    max_rows = std::max(max_rows, run);
  }
  s_buf_.resize(max_rows);
  g_s_.resize(max_rows);
  a_mat_.resize(4 * m);
  g_a_.resize(4 * m);
}

std::size_t BaselineDP::workspace_bytes() const {
  std::size_t b = env_.storage_bytes() + env_ws_.bytes() + prod_ws_.bytes() +
                  g_rmat_.capacity() * sizeof(double) + s_buf_.capacity() * sizeof(double) +
                  g_s_.capacity() * sizeof(double) + a_mat_.capacity() * sizeof(double) +
                  g_a_.capacity() * sizeof(double) +
                  row_off_.capacity() * sizeof(std::size_t) +
                  atom_energy_.capacity() * sizeof(double);
  for (const auto& g : g_by_type_) b += g.size() * sizeof(double);
  for (const auto& g : g_g_by_type_) b += g.size() * sizeof(double);
  return b;
}

md::ForceResult BaselineDP::compute(const md::Box& box, md::Atoms& atoms,
                                    const md::NeighborList& nlist, bool periodic) {
  ScopedTimer timer("baseline.compute", "kernel");
  const ModelConfig& cfg = model_.config();
  {
    ScopedTimer t("baseline.env_mat", "kernel");
    build_env_mat(cfg, box, atoms, nlist, env_, env_ws_, env_kernel_, periodic);
  }
  const std::size_t n = env_.n_atoms;
  const std::size_t m = cfg.m();
  const std::size_t m_sub = cfg.axis_neuron;
  const int nm = cfg.nm();
  const double scale = 1.0 / static_cast<double>(nm);
  prepare(n);

  // ---- Embedding forward: one batched pipeline per neighbor type over the
  // stored slots (the dense layout keeps its padded rows: the fixed GEMM
  // shape IS the baseline being measured) --------------------------------
  embedding_bytes_ = 0;
  {
    ScopedTimer t("baseline.embedding_fwd", "kernel");
    for (int t = 0; t < cfg.ntypes; ++t) {
      const std::size_t rows = row_of(t, n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t base = env_.block_begin(i, t);
        const std::size_t r0 = row_of(t, i);
        const int cnt = rows_of(i, t);
        for (int k = 0; k < cnt; ++k)
          s_buf_[r0 + static_cast<std::size_t>(k)] =
              env_.rmat_at(base + static_cast<std::size_t>(k))[0];
      }
      model_.embedding(t).forward_batch_ws(s_buf_.data(), rows, g_by_type_[t], ws_by_type_[t]);
      embedding_bytes_ += g_by_type_[t].size() * sizeof(double);
      for (const auto& mtx : ws_by_type_[t].inputs) embedding_bytes_ += mtx.size() * sizeof(double);
      for (const auto& mtx : ws_by_type_[t].acts) embedding_bytes_ += mtx.size() * sizeof(double);
      CostRegistry::instance().add(
          "baseline.embedding_fwd",
          {static_cast<double>(rows) * model_.embedding(t).flops_per_scalar(),
           static_cast<double>(rows) * sizeof(double),
           static_cast<double>(rows) * static_cast<double>(m) * sizeof(double)});
    }
  }

  // ---- Per-atom descriptor + fitting net, forward and backward ----------
  md::ForceResult out;
  {
    ScopedTimer t("baseline.descriptor_fit", "kernel");
    for (std::size_t i = 0; i < n; ++i) {
      // A = (1/N_m) R~^T G, accumulated over the per-type slot blocks.
      std::memset(a_mat_.data(), 0, 4 * m * sizeof(double));
      for (int t = 0; t < cfg.ntypes; ++t) {
        const std::size_t krows = static_cast<std::size_t>(rows_of(i, t));
        if (krows == 0) continue;
        nn::gemm_tn_acc(env_.rmat_at(env_.block_begin(i, t)), g_by_type_[t].row(row_of(t, i)),
                        a_mat_.data(), 4, krows, m);
      }
      for (double& v : a_mat_) v *= scale;

      atom_energy_[i] = descriptor_fit_atom(model_.fitting(atoms.type[i]), a_mat_.data(), m,
                                            m_sub, scale, scratch_, g_a_.data());
      out.energy += atom_energy_[i];

      // dE/dG rows and dE/dR~ rows for every stored slot of this atom.
      for (int t = 0; t < cfg.ntypes; ++t) {
        const std::size_t krows = static_cast<std::size_t>(rows_of(i, t));
        if (krows == 0) continue;
        const std::size_t base = env_.block_begin(i, t);
        // dG_block (rows x M) = R~_block (rows x 4) * g_a (4 x M)
        nn::gemm(env_.rmat_at(base), g_a_.data(), g_g_by_type_[t].row(row_of(t, i)), krows, 4,
                 m);
        // g_rmat_block (rows x 4) = G_block (rows x M) * g_a^T (M x 4)
        nn::gemm_nt(g_by_type_[t].row(row_of(t, i)), g_a_.data(), g_rmat_.data() + base * 4,
                    krows, m, 4);
      }
    }
  }

  // ---- Embedding backward (GEMM-shaped, again over every stored slot) ---
  {
    ScopedTimer t("baseline.embedding_bwd", "kernel");
    for (int t = 0; t < cfg.ntypes; ++t) {
      const std::size_t rows = row_of(t, n);
      model_.embedding(t).backward_batch(ws_by_type_[t], g_g_by_type_[t], g_s_.data());
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t base = env_.block_begin(i, t);
        const std::size_t r0 = row_of(t, i);
        const int cnt = rows_of(i, t);
        for (int k = 0; k < cnt; ++k)
          g_rmat_[(base + static_cast<std::size_t>(k)) * 4] +=
              g_s_[r0 + static_cast<std::size_t>(k)];
      }
      CostRegistry::instance().add(
          "baseline.embedding_bwd",
          {2.0 * static_cast<double>(rows) * model_.embedding(t).flops_per_scalar(),
           2.0 * static_cast<double>(rows) * static_cast<double>(m) * sizeof(double),
           static_cast<double>(rows) * sizeof(double)});
    }
  }

  // ---- Force / virial scatter -------------------------------------------
  {
    ScopedTimer t("baseline.prod_force", "kernel");
    atoms.zero_forces();
    prod_force_virial(env_, g_rmat_.data(), box, atoms, periodic, atoms.force, out.virial,
                      prod_ws_);
  }
  return out;
}

}  // namespace dp::core
