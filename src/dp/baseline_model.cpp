#include "dp/baseline_model.hpp"

#include <cstring>

#include "common/cost.hpp"
#include "common/timer.hpp"
#include "dp/descriptor.hpp"
#include "dp/prod_force.hpp"
#include "nn/gemm.hpp"

namespace dp::core {

BaselineDP::BaselineDP(const DPModel& model, EnvMatKernel env_kernel)
    : model_(model), env_kernel_(env_kernel) {}

md::ForceResult BaselineDP::compute(const md::Box& box, md::Atoms& atoms,
                                    const md::NeighborList& nlist, bool periodic) {
  ScopedTimer timer("baseline.compute", "kernel");
  const ModelConfig& cfg = model_.config();
  {
    ScopedTimer t("baseline.env_mat", "kernel");
    build_env_mat(cfg, box, atoms, nlist, env_, env_kernel_, periodic);
  }
  const std::size_t n = env_.n_atoms;
  const std::size_t m = cfg.m();
  const std::size_t m_sub = cfg.axis_neuron;
  const int nm = cfg.nm();
  const double scale = 1.0 / static_cast<double>(nm);

  // ---- Embedding forward: one batched pipeline per neighbor type over ALL
  // slots, padded ones included (the baseline cannot skip them: the GEMM
  // shape is fixed) -------------------------------------------------------
  std::vector<nn::Matrix> g_by_type(static_cast<std::size_t>(cfg.ntypes));
  std::vector<nn::EmbeddingNet::BatchWorkspace> ws_by_type(
      static_cast<std::size_t>(cfg.ntypes));
  embedding_bytes_ = 0;
  {
    ScopedTimer t("baseline.embedding_fwd", "kernel");
    AlignedVector<double> s_buf;
    for (int t = 0; t < cfg.ntypes; ++t) {
      const int sel_t = cfg.sel[static_cast<std::size_t>(t)];
      const int off = cfg.type_offset(t);
      const std::size_t rows = n * static_cast<std::size_t>(sel_t);
      s_buf.resize(rows);
      for (std::size_t i = 0; i < n; ++i)
        for (int k = 0; k < sel_t; ++k)
          s_buf[i * static_cast<std::size_t>(sel_t) + static_cast<std::size_t>(k)] =
              env_.rmat_row(i, off + k)[0];
      model_.embedding(t).forward_batch_ws(s_buf.data(), rows, g_by_type[t], ws_by_type[t]);
      embedding_bytes_ += g_by_type[t].size() * sizeof(double);
      for (const auto& mtx : ws_by_type[t].inputs) embedding_bytes_ += mtx.size() * sizeof(double);
      for (const auto& mtx : ws_by_type[t].acts) embedding_bytes_ += mtx.size() * sizeof(double);
      CostRegistry::instance().add(
          "baseline.embedding_fwd",
          {static_cast<double>(rows) * model_.embedding(t).flops_per_scalar(),
           static_cast<double>(rows) * sizeof(double),
           static_cast<double>(rows) * static_cast<double>(m) * sizeof(double)});
    }
  }

  // ---- Per-atom descriptor + fitting net, forward and backward ----------
  atom_energy_.assign(n, 0.0);
  AlignedVector<double> g_rmat(n * static_cast<std::size_t>(nm) * 4, 0.0);
  std::vector<nn::Matrix> g_g_by_type(static_cast<std::size_t>(cfg.ntypes));
  for (int t = 0; t < cfg.ntypes; ++t)
    g_g_by_type[t].resize(n * static_cast<std::size_t>(cfg.sel[static_cast<std::size_t>(t)]),
                          m);

  md::ForceResult out;
  {
    ScopedTimer t("baseline.descriptor_fit", "kernel");
    AlignedVector<double> a_mat(4 * m), g_a(4 * m);
    AtomKernelScratch scratch;
    for (std::size_t i = 0; i < n; ++i) {
      // A = (1/N_m) R~^T G, accumulated over the per-type slot blocks.
      std::memset(a_mat.data(), 0, 4 * m * sizeof(double));
      for (int t = 0; t < cfg.ntypes; ++t) {
        const int sel_t = cfg.sel[static_cast<std::size_t>(t)];
        const int off = cfg.type_offset(t);
        nn::gemm_tn_acc(env_.rmat_row(i, off),
                        g_by_type[t].row(i * static_cast<std::size_t>(sel_t)), a_mat.data(), 4,
                        static_cast<std::size_t>(sel_t), m);
      }
      for (double& v : a_mat) v *= scale;

      atom_energy_[i] = descriptor_fit_atom(model_.fitting(atoms.type[i]), a_mat.data(), m,
                                            m_sub, scale, scratch, g_a.data());
      out.energy += atom_energy_[i];

      // dE/dG rows and dE/dR~ rows for every slot of this atom.
      for (int t = 0; t < cfg.ntypes; ++t) {
        const int sel_t = cfg.sel[static_cast<std::size_t>(t)];
        const int off = cfg.type_offset(t);
        // dG_block (sel x M) = R~_block (sel x 4) * g_a (4 x M)
        nn::gemm(env_.rmat_row(i, off), g_a.data(),
                 g_g_by_type[t].row(i * static_cast<std::size_t>(sel_t)),
                 static_cast<std::size_t>(sel_t), 4, m);
        // g_rmat_block (sel x 4) = G_block (sel x M) * g_a^T (M x 4)
        nn::gemm_nt(g_by_type[t].row(i * static_cast<std::size_t>(sel_t)), g_a.data(),
                    g_rmat.data() + (i * static_cast<std::size_t>(nm) +
                                     static_cast<std::size_t>(off)) *
                                        4,
                    static_cast<std::size_t>(sel_t), m, 4);
      }
    }
  }

  // ---- Embedding backward (GEMM-shaped, again over every slot) ----------
  {
    ScopedTimer t("baseline.embedding_bwd", "kernel");
    AlignedVector<double> g_s;
    for (int t = 0; t < cfg.ntypes; ++t) {
      const int sel_t = cfg.sel[static_cast<std::size_t>(t)];
      const int off = cfg.type_offset(t);
      const std::size_t rows = n * static_cast<std::size_t>(sel_t);
      g_s.resize(rows);
      model_.embedding(t).backward_batch(ws_by_type[t], g_g_by_type[t], g_s.data());
      for (std::size_t i = 0; i < n; ++i)
        for (int k = 0; k < sel_t; ++k)
          g_rmat[(i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(off + k)) * 4] +=
              g_s[i * static_cast<std::size_t>(sel_t) + static_cast<std::size_t>(k)];
      CostRegistry::instance().add(
          "baseline.embedding_bwd",
          {2.0 * static_cast<double>(rows) * model_.embedding(t).flops_per_scalar(),
           2.0 * static_cast<double>(rows) * static_cast<double>(m) * sizeof(double),
           static_cast<double>(rows) * sizeof(double)});
    }
  }

  // ---- Force / virial scatter -------------------------------------------
  {
    ScopedTimer t("baseline.prod_force", "kernel");
    atoms.zero_forces();
    prod_force_virial(env_, g_rmat.data(), box, atoms, periodic, atoms.force, out.virial);
  }
  return out;
}

}  // namespace dp::core
