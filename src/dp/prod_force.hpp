// ProdForceSeA / ProdVirialSeA: scatter the per-slot environment-matrix
// gradients into atomic forces and the global virial (paper Sec 3.4.3).
//
// Input g_rmat holds dE/dR~ for every stored slot — including the chain
// contribution dE/ds folded into column 0 by the caller — indexed by the
// same global slot index as the EnvMat (so it works on both the dense and
// the compact layout). The kernel contracts it with descrpt_a_deriv and
// applies Newton's third law: the slot contributes +f to the center and -f
// to the neighbor. Force and virial come out of ONE walk over the filled
// slots; on the compact layout the displacement is read from the CSR's
// `diff` instead of being recomputed via minimum image.
//
// Parallel and DETERMINISTIC: centers are split into kProdForceLanes fixed
// contiguous lanes (independent of the thread count). Each lane scatters
// neighbor contributions into its own force buffer; lanes are folded in
// ascending lane order afterwards, so the floating-point addition order —
// and hence every output bit — is identical at any OMP_NUM_THREADS.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "dp/env_mat.hpp"
#include "md/atoms.hpp"
#include "md/box.hpp"

namespace dp::core {

/// Fixed lane count of the deterministic scatter. A constant (not the
/// thread count) so the accumulation tree never depends on OMP_NUM_THREADS;
/// 16 keeps all cores of typical nodes busy while bounding the fold to 16
/// buffer passes.
inline constexpr int kProdForceLanes = 16;

/// Persistent per-lane accumulators, grow-only like the other workspaces.
struct ProdForceWorkspace {
  AlignedVector<double> lane_force;                ///< kProdForceLanes * n * 3
  std::array<Mat3, kProdForceLanes> lane_virial{}; ///< folded in lane order
  std::size_t bytes() const { return lane_force.capacity() * sizeof(double); }
};

/// forces[k] += contributions for both centers and neighbors (ghosts
/// included); forces must be pre-sized to atoms.size() (not cleared here).
/// virial += sum_slots (r_i - r_j) (x) f_slot.
void prod_force_virial(const EnvMat& env, const double* g_rmat, const md::Box& box,
                       const md::Atoms& atoms, bool periodic, std::vector<Vec3>& forces,
                       Mat3& virial, ProdForceWorkspace& ws);

/// Convenience overload with a per-thread persistent workspace.
inline void prod_force_virial(const EnvMat& env, const double* g_rmat, const md::Box& box,
                              const md::Atoms& atoms, bool periodic,
                              std::vector<Vec3>& forces, Mat3& virial) {
  static thread_local ProdForceWorkspace ws;
  prod_force_virial(env, g_rmat, box, atoms, periodic, forces, virial, ws);
}

}  // namespace dp::core
