// ProdForceSeA / ProdVirialSeA: scatter the per-slot environment-matrix
// gradients into atomic forces and the global virial (paper Sec 3.4.3).
//
// Input g_rmat holds dE/dR~ for every (atom, slot) — including the chain
// contribution dE/ds folded into column 0 by the caller. The kernels contract
// it with descrpt_a_deriv and apply Newton's third law: the slot contributes
// +f to the center and -f to the neighbor.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "dp/env_mat.hpp"
#include "md/atoms.hpp"
#include "md/box.hpp"

namespace dp::core {

/// forces[k] += contributions for both centers and neighbors (ghosts
/// included); forces must be pre-sized to atoms.size() (not cleared here).
void prod_force(const EnvMat& env, const double* g_rmat, std::vector<Vec3>& forces);

/// Accumulates the virial  W += sum_slots (r_i - r_j) (x) f_slot ; needs the
/// displacement vectors, recomputed from positions exactly as env-mat did.
void prod_virial(const EnvMat& env, const double* g_rmat, const md::Box& box,
                 const md::Atoms& atoms, bool periodic, Mat3& virial);

}  // namespace dp::core
