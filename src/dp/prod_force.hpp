// ProdForceSeA / ProdVirialSeA: scatter the per-slot environment-matrix
// gradients into atomic forces and the global virial (paper Sec 3.4.3).
//
// Input g_rmat holds dE/dR~ for every (atom, slot) — including the chain
// contribution dE/ds folded into column 0 by the caller. The kernel contracts
// it with descrpt_a_deriv and applies Newton's third law: the slot contributes
// +f to the center and -f to the neighbor. Force and virial come out of ONE
// walk over the filled slots: the pair gradient and the minimum-image
// displacement are each evaluated once per slot and feed both accumulators
// (the original two-operator formulation recomputed both for the virial).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "dp/env_mat.hpp"
#include "md/atoms.hpp"
#include "md/box.hpp"

namespace dp::core {

/// forces[k] += contributions for both centers and neighbors (ghosts
/// included); forces must be pre-sized to atoms.size() (not cleared here).
/// virial += sum_slots (r_i - r_j) (x) f_slot, displacement recomputed from
/// positions exactly as env-mat did.
void prod_force_virial(const EnvMat& env, const double* g_rmat, const md::Box& box,
                       const md::Atoms& atoms, bool periodic, std::vector<Vec3>& forces,
                       Mat3& virial);

}  // namespace dp::core
