// A Deep Potential model: configuration + one embedding net per neighbor
// type + one fitting net per center type.
//
// The networks are deterministically initialized from a seed; this library
// reproduces the paper's *inference optimizations*, whose behaviour depends
// on network shape and smoothness, not on trained weights (DESIGN.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dp/model_config.hpp"
#include "nn/embedding_net.hpp"
#include "nn/fitting_net.hpp"

namespace dp::core {

class DPModel {
 public:
  DPModel() = default;
  explicit DPModel(ModelConfig config, std::uint64_t seed = 2022);

  const ModelConfig& config() const { return cfg_; }

  /// Embedding net applied to neighbors of type t (one-side mode only).
  const nn::EmbeddingNet& embedding(int t) const {
    DP_CHECK_MSG(cfg_.type_one_side, "pair-mode model: use embedding_pair()");
    return embed_[static_cast<std::size_t>(t)];
  }
  nn::EmbeddingNet& embedding(int t) {
    DP_CHECK_MSG(cfg_.type_one_side, "pair-mode model: use embedding_pair()");
    return embed_[static_cast<std::size_t>(t)];
  }

  /// Embedding net for a (center type, neighbor type) pair; works in both
  /// modes (one-side ignores the center type).
  const nn::EmbeddingNet& embedding_pair(int center, int neighbor) const {
    return embed_[pair_index(center, neighbor)];
  }
  /// Index into the per-pair net/table arrays.
  std::size_t pair_index(int center, int neighbor) const {
    return cfg_.type_one_side
               ? static_cast<std::size_t>(neighbor)
               : static_cast<std::size_t>(center) * static_cast<std::size_t>(cfg_.ntypes) +
                     static_cast<std::size_t>(neighbor);
  }
  std::size_t n_embedding_nets() const { return embed_.size(); }

  /// Fitting net of center type t.
  const nn::FittingNet& fitting(int t) const { return fit_[static_cast<std::size_t>(t)]; }
  nn::FittingNet& fitting(int t) { return fit_[static_cast<std::size_t>(t)]; }

  /// Switch every network to the tabulated-tanh activation (Fig 8 "other
  /// optimizations" step on A64FX).
  void set_activation(nn::Activation act);

  void save(const std::string& path) const;
  static DPModel load(const std::string& path);
  void save(std::ostream& os) const;
  static DPModel load(std::istream& is);

 private:
  ModelConfig cfg_;
  std::vector<nn::EmbeddingNet> embed_;  // per neighbor type
  std::vector<nn::FittingNet> fit_;      // per center type
};

}  // namespace dp::core
