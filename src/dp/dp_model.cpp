#include "dp/dp_model.hpp"

#include <cstdint>
#include <fstream>

#include "common/rng.hpp"
#include "nn/serialize.hpp"

namespace dp::core {

DPModel::DPModel(ModelConfig config, std::uint64_t seed) : cfg_(std::move(config)) {
  cfg_.validate();
  Rng rng(seed);
  const int n_embed = cfg_.type_one_side ? cfg_.ntypes : cfg_.ntypes * cfg_.ntypes;
  embed_.reserve(static_cast<std::size_t>(n_embed));
  fit_.reserve(static_cast<std::size_t>(cfg_.ntypes));
  for (int t = 0; t < n_embed; ++t) {
    embed_.emplace_back(cfg_.embed_widths);
    embed_.back().init_random(rng);
  }
  for (int t = 0; t < cfg_.ntypes; ++t) {
    fit_.emplace_back(cfg_.descriptor_dim(), cfg_.fit_widths);
    fit_.back().init_random(rng);
  }
}

void DPModel::set_activation(nn::Activation act) {
  for (auto& e : embed_) e.set_activation(act);
  for (auto& f : fit_) f.set_activation(act);
}

namespace {
template <class T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <class T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DP_CHECK_MSG(static_cast<bool>(is), "truncated DP model file");
  return v;
}
}  // namespace

void DPModel::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  DP_CHECK_MSG(os.is_open(), "cannot open " << path);
  save(os);
}

namespace {
constexpr std::uint32_t kModelMagic = 0x44504d31;  // "DPM1"
constexpr std::uint32_t kModelVersion = 3;  // v3: + descriptor kind
}  // namespace

void DPModel::save(std::ostream& os) const {
  write_pod(os, kModelMagic);
  write_pod(os, kModelVersion);
  write_pod(os, cfg_.rcut);
  write_pod(os, cfg_.rcut_smth);
  write_pod<std::int32_t>(os, cfg_.type_one_side ? 1 : 0);
  write_pod<std::int32_t>(os, static_cast<std::int32_t>(cfg_.descriptor));
  write_pod<std::int32_t>(os, cfg_.ntypes);
  for (int s : cfg_.sel) write_pod<std::int32_t>(os, s);
  write_pod<std::uint64_t>(os, cfg_.embed_widths.size());
  for (std::size_t w : cfg_.embed_widths) write_pod<std::uint64_t>(os, w);
  write_pod<std::uint64_t>(os, cfg_.axis_neuron);
  write_pod<std::uint64_t>(os, cfg_.fit_widths.size());
  for (std::size_t w : cfg_.fit_widths) write_pod<std::uint64_t>(os, w);
  for (const auto& e : embed_) nn::save(os, e);
  for (const auto& f : fit_) nn::save(os, f);
}

DPModel DPModel::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DP_CHECK_MSG(is.is_open(), "cannot open " << path);
  return load(is);
}

DPModel DPModel::load(std::istream& is) {
  DP_CHECK_MSG(read_pod<std::uint32_t>(is) == kModelMagic, "not a DP model file");
  DP_CHECK_MSG(read_pod<std::uint32_t>(is) == kModelVersion,
               "unsupported DP model file version");
  ModelConfig cfg;
  cfg.rcut = read_pod<double>(is);
  cfg.rcut_smth = read_pod<double>(is);
  cfg.type_one_side = read_pod<std::int32_t>(is) != 0;
  cfg.descriptor = static_cast<DescriptorKind>(read_pod<std::int32_t>(is));
  cfg.ntypes = read_pod<std::int32_t>(is);
  cfg.sel.resize(static_cast<std::size_t>(cfg.ntypes));
  for (auto& s : cfg.sel) s = read_pod<std::int32_t>(is);
  cfg.embed_widths.resize(read_pod<std::uint64_t>(is));
  for (auto& w : cfg.embed_widths) w = read_pod<std::uint64_t>(is);
  cfg.axis_neuron = read_pod<std::uint64_t>(is);
  cfg.fit_widths.resize(read_pod<std::uint64_t>(is));
  for (auto& w : cfg.fit_widths) w = read_pod<std::uint64_t>(is);

  DPModel model;
  model.cfg_ = cfg;
  model.cfg_.validate();
  const int n_embed = cfg.type_one_side ? cfg.ntypes : cfg.ntypes * cfg.ntypes;
  for (int t = 0; t < n_embed; ++t) model.embed_.push_back(nn::load_embedding(is));
  for (int t = 0; t < cfg.ntypes; ++t) model.fit_.push_back(nn::load_fitting(is));
  return model;
}

}  // namespace dp::core
