// Hyper-parameters of a Deep Potential model (paper Sec 2.1 / Sec 4).
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace dp::core {

/// Descriptor flavor: the paper's two-axis se_a (Eq. 2) or the cheaper
/// radial-only se_r, whose per-atom descriptor is the mean embedding row
/// D[b] = (1/N_m) sum_j g_b(s_j) — rotation-invariant by construction since
/// it sees only distances.
enum class DescriptorKind { SeA, SeR };

struct ModelConfig {
  double rcut = 6.0;       ///< descriptor cutoff R_c [A]
  double rcut_smth = 4.0;  ///< inner radius where the gate starts decaying [A]
  int ntypes = 1;
  /// Reserved neighbor slots per neighbor type; N_m = sum(sel). The paper
  /// reserves generously (copper: 500 for high-pressure states) — the slack
  /// is exactly the redundancy the optimized kernels bypass.
  std::vector<int> sel = {128};
  std::vector<std::size_t> embed_widths = {32, 64, 128};  ///< per-layer widths
  /// true: one embedding net per *neighbor* type (DeePMD type_one_side);
  /// false: one per (center, neighbor) type pair — ntypes^2 nets. The pair
  /// mode is supported by the tabulated/fused paths (each atom looks up its
  /// own tables); the legacy GEMM paths require one-side batching.
  bool type_one_side = true;
  DescriptorKind descriptor = DescriptorKind::SeA;
  std::size_t axis_neuron = 16;                           ///< M< (sub-matrix columns, se_a only)
  std::vector<std::size_t> fit_widths = {240, 240, 240};

  int nm() const { return std::accumulate(sel.begin(), sel.end(), 0); }
  std::size_t m() const { return embed_widths.back(); }
  std::size_t descriptor_dim() const {
    return descriptor == DescriptorKind::SeA ? axis_neuron * m() : m();
  }
  /// Row offset of neighbor-type t's slot block in the environment matrix.
  int type_offset(int t) const {
    return std::accumulate(sel.begin(), sel.begin() + t, 0);
  }

  void validate() const {
    DP_CHECK(rcut > 0 && rcut_smth >= 0 && rcut_smth < rcut);
    DP_CHECK(ntypes >= 1 && static_cast<int>(sel.size()) == ntypes);
    for (int s : sel) DP_CHECK(s > 0);
    DP_CHECK(!embed_widths.empty() && !fit_widths.empty());
    DP_CHECK(axis_neuron >= 1 && axis_neuron <= m());
  }

  /// Paper water model: rc = 6 A, N_m = 138 (O: 46, H: 92), nets 32x64x128
  /// and 240x240x240.
  static ModelConfig water() {
    ModelConfig c;
    c.rcut = 6.0;
    c.rcut_smth = 0.5;
    c.ntypes = 2;
    c.sel = {46, 92};
    c.embed_widths = {32, 64, 128};
    c.axis_neuron = 16;
    c.fit_widths = {240, 240, 240};
    return c;
  }

  /// Paper copper model: rc = 8 A, N_m = 500 (reserved for high pressure).
  static ModelConfig copper() {
    ModelConfig c;
    c.rcut = 8.0;
    c.rcut_smth = 2.0;
    c.ntypes = 1;
    c.sel = {500};
    c.embed_widths = {32, 64, 128};
    c.axis_neuron = 16;
    c.fit_widths = {240, 240, 240};
    return c;
  }

  /// Small configuration for fast unit tests (not a paper model).
  static ModelConfig tiny(int ntypes = 1) {
    ModelConfig c;
    c.rcut = 4.0;
    c.rcut_smth = 1.0;
    c.ntypes = ntypes;
    c.sel.assign(ntypes, 24);
    c.embed_widths = {4, 8, 16};
    c.axis_neuron = 4;
    c.fit_widths = {16, 16, 16};
    return c;
  }
};

}  // namespace dp::core
