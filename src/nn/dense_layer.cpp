#include "nn/dense_layer.hpp"

#include <cmath>

#include "common/error.hpp"
#include "nn/gemm.hpp"

namespace dp::nn {

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Activation act, Shortcut shortcut)
    : in_(in), out_(out), act_(act), shortcut_(shortcut) {
  DP_CHECK(in > 0 && out > 0);
  if (shortcut == Shortcut::Identity) DP_CHECK_MSG(in == out, "identity shortcut needs in == out");
  if (shortcut == Shortcut::Concat) DP_CHECK_MSG(out == 2 * in, "concat shortcut needs out == 2*in");
  w_.resize(in, out);
  b_.assign(out, 0.0);
}

void DenseLayer::init_random(Rng& rng) {
  const double scale = 1.0 / std::sqrt(static_cast<double>(in_));
  for (std::size_t i = 0; i < w_.size(); ++i) w_.data()[i] = rng.gaussian(0.0, scale);
  for (auto& b : b_) b = rng.gaussian(0.0, 0.1);
}

double DenseLayer::activate(double u) const {
  switch (act_) {
    case Activation::Tanh:
      return std::tanh(u);
    case Activation::TanhTabulated:
      return default_tanh_table().eval(u);
    case Activation::Linear:
      return u;
  }
  return u;
}

double DenseLayer::activate_deriv_from_value(double a) const {
  return act_ == Activation::Linear ? 1.0 : 1.0 - a * a;
}

void DenseLayer::forward_batch(const Matrix& x, Matrix& y) const {
  DP_CHECK(x.cols() == in_);
  y.resize(x.rows(), out_);
  gemm(x.data(), w_.data(), y.data(), x.rows(), in_, out_);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    double* yr = y.row(r);
    const double* xr = x.row(r);
    for (std::size_t j = 0; j < out_; ++j) yr[j] = activate(yr[j] + b_[j]);
    switch (shortcut_) {
      case Shortcut::None:
        break;
      case Shortcut::Identity:
        for (std::size_t j = 0; j < out_; ++j) yr[j] += xr[j];
        break;
      case Shortcut::Concat:
        for (std::size_t j = 0; j < out_; ++j) yr[j] += xr[j % in_];
        break;
    }
  }
}

void DenseLayer::forward_row(const double* x, double* y, double* act_save) const {
  affine(x, w_.data(), b_.data(), y, in_, out_);
  for (std::size_t j = 0; j < out_; ++j) y[j] = activate(y[j]);
  if (act_save != nullptr)
    for (std::size_t j = 0; j < out_; ++j) act_save[j] = y[j];
  switch (shortcut_) {
    case Shortcut::None:
      break;
    case Shortcut::Identity:
      for (std::size_t j = 0; j < out_; ++j) y[j] += x[j];
      break;
    case Shortcut::Concat:
      for (std::size_t j = 0; j < out_; ++j) y[j] += x[j % in_];
      break;
  }
}

void DenseLayer::backward_row(const double* g_out, const double* act_saved, double* g_in,
                              const double* x, Grads* grads) const {
  // g_u[j] = g_out[j] * act'(u_j); stack buffer sized for the widest layer
  // would be fragile, so use a small local vector (layers are <= a few
  // hundred wide; this path is per-atom, not per-neighbor).
  AlignedVector<double> g_u(out_);
  for (std::size_t j = 0; j < out_; ++j)
    g_u[j] = g_out[j] * activate_deriv_from_value(act_saved[j]);
  gemv_t(g_u.data(), w_.data(), g_in, in_, out_);
  if (grads != nullptr) {
    DP_CHECK_MSG(x != nullptr, "weight gradients need the forward input");
    // dE/dW = x (x) g_u, dE/db = g_u.
    for (std::size_t p = 0; p < in_; ++p) {
      const double xv = x[p];
      double* wrow = grads->w.row(p);
#pragma omp simd
      for (std::size_t j = 0; j < out_; ++j) wrow[j] += xv * g_u[j];
    }
    for (std::size_t j = 0; j < out_; ++j) grads->b[j] += g_u[j];
  }
  switch (shortcut_) {
    case Shortcut::None:
      break;
    case Shortcut::Identity:
      for (std::size_t j = 0; j < in_; ++j) g_in[j] += g_out[j];
      break;
    case Shortcut::Concat:
      for (std::size_t j = 0; j < out_; ++j) g_in[j % in_] += g_out[j];
      break;
  }
}

void DenseLayer::forward_batch_ws(const Matrix& x, Matrix& y, Matrix& act_save) const {
  DP_CHECK(x.cols() == in_);
  const std::size_t n = x.rows();
  act_save.resize(n, out_);
  gemm(x.data(), w_.data(), act_save.data(), n, in_, out_);
  for (std::size_t r = 0; r < n; ++r) {
    double* ar = act_save.row(r);
    for (std::size_t j = 0; j < out_; ++j) ar[j] = activate(ar[j] + b_[j]);
  }
  y.resize(n, out_);
  for (std::size_t r = 0; r < n; ++r) {
    double* yr = y.row(r);
    const double* ar = act_save.row(r);
    const double* xr = x.row(r);
    switch (shortcut_) {
      case Shortcut::None:
        for (std::size_t j = 0; j < out_; ++j) yr[j] = ar[j];
        break;
      case Shortcut::Identity:
        for (std::size_t j = 0; j < out_; ++j) yr[j] = ar[j] + xr[j];
        break;
      case Shortcut::Concat:
        for (std::size_t j = 0; j < out_; ++j) yr[j] = ar[j] + xr[j % in_];
        break;
    }
  }
}

void DenseLayer::backward_batch(const Matrix& g_out, const Matrix& act_saved, Matrix& g_in,
                                const Matrix* x, Grads* grads) const {
  DP_CHECK(g_out.cols() == out_ && same_shape(g_out, act_saved));
  const std::size_t n = g_out.rows();
  // g_u = g_out .* act'(u), computed from the saved activation values.
  Matrix g_u(n, out_);
  for (std::size_t r = 0; r < n; ++r) {
    const double* go = g_out.row(r);
    const double* ar = act_saved.row(r);
    double* gu = g_u.row(r);
    for (std::size_t j = 0; j < out_; ++j)
      gu[j] = go[j] * activate_deriv_from_value(ar[j]);
  }
  g_in.resize(n, in_);
  gemm_nt(g_u.data(), w_.data(), g_in.data(), n, out_, in_);
  if (grads != nullptr) {
    DP_CHECK_MSG(x != nullptr && x->rows() == n && x->cols() == in_,
                 "weight gradients need the forward input batch");
    // dE/dW += x^T g_u  (in x out), dE/db += column sums of g_u.
    gemm_tn_acc(x->data(), g_u.data(), grads->w.data(), in_, n, out_);
    for (std::size_t r = 0; r < n; ++r) {
      const double* gu = g_u.row(r);
      for (std::size_t j = 0; j < out_; ++j) grads->b[j] += gu[j];
    }
  }
  switch (shortcut_) {
    case Shortcut::None:
      break;
    case Shortcut::Identity:
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t j = 0; j < in_; ++j) g_in(r, j) += g_out(r, j);
      break;
    case Shortcut::Concat:
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t j = 0; j < out_; ++j) g_in(r, j % in_) += g_out(r, j);
      break;
  }
}

void DenseLayer::forward_jet(const double* x, const double* dx, const double* d2x,
                             double* y, double* dy, double* d2y) const {
  // u = x W + b and its two input-derivatives (linear, so they share W).
  AlignedVector<double> u(out_), du(out_, 0.0), d2u(out_, 0.0);
  affine(x, w_.data(), b_.data(), u.data(), in_, out_);
  gemv_acc(dx, w_.data(), du.data(), in_, out_);
  gemv_acc(d2x, w_.data(), d2u.data(), in_, out_);
  for (std::size_t j = 0; j < out_; ++j) {
    double a, da, d2a;
    if (act_ == Activation::Linear) {
      a = u[j];
      da = du[j];
      d2a = d2u[j];
    } else {
      // Exact tanh in the jet path: the jet is used for force evaluation and
      // for building tables, both of which want the reference derivatives.
      a = std::tanh(u[j]);
      const double sech2 = 1.0 - a * a;
      da = sech2 * du[j];
      d2a = sech2 * d2u[j] - 2.0 * a * sech2 * du[j] * du[j];
    }
    y[j] = a;
    dy[j] = da;
    d2y[j] = d2a;
  }
  switch (shortcut_) {
    case Shortcut::None:
      break;
    case Shortcut::Identity:
      for (std::size_t j = 0; j < out_; ++j) {
        y[j] += x[j];
        dy[j] += dx[j];
        d2y[j] += d2x[j];
      }
      break;
    case Shortcut::Concat:
      for (std::size_t j = 0; j < out_; ++j) {
        y[j] += x[j % in_];
        dy[j] += dx[j % in_];
        d2y[j] += d2x[j % in_];
      }
      break;
  }
}

}  // namespace dp::nn
