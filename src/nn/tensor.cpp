#include "nn/tensor.hpp"

#include <cmath>

namespace dp::nn {

double max_abs_diff(const Matrix& a, const Matrix& b) {
  DP_CHECK(same_shape(a, b));
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = std::fabs(a.data()[i] - b.data()[i]);
    if (d > m) m = d;
  }
  return m;
}

double frobenius_norm(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a.data()[i] * a.data()[i];
  return std::sqrt(s);
}

}  // namespace dp::nn
