// Binary (de)serialization of networks — the stand-in for DeePMD-kit's
// frozen-model files. Format: little-endian, magic + version header, then
// layer records (dims, activation, shortcut, weights, bias).
#pragma once

#include <iosfwd>
#include <string>

#include "nn/embedding_net.hpp"
#include "nn/fitting_net.hpp"

namespace dp::nn {

void save(std::ostream& os, const EmbeddingNet& net);
void save(std::ostream& os, const FittingNet& net);

EmbeddingNet load_embedding(std::istream& is);
FittingNet load_fitting(std::istream& is);

void save_to_file(const std::string& path, const EmbeddingNet& e, const FittingNet& f);
void load_from_file(const std::string& path, EmbeddingNet& e, FittingNet& f);

}  // namespace dp::nn
