// The fitting net: maps the flattened symmetry-preserving descriptor D_i to
// the atomic energy E_i (paper Sec 2.1, Fig 1 (d)).
//
// Hidden layers share one width and use identity shortcuts; the output layer
// is linear to a single scalar. Reverse-mode through the net yields dE/dD,
// the seed of the force back-propagation.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/dense_layer.hpp"

namespace dp::nn {

class FittingNet {
 public:
  FittingNet() = default;
  /// in_dim = M< * M (flattened descriptor); hidden e.g. {240, 240, 240}.
  FittingNet(std::size_t in_dim, const std::vector<std::size_t>& hidden,
             Activation act = Activation::Tanh);

  void init_random(Rng& rng);

  std::size_t input_dim() const { return in_dim_; }
  std::vector<DenseLayer>& layers() { return layers_; }
  const std::vector<DenseLayer>& layers() const { return layers_; }
  void set_activation(Activation a);

  /// Per-thread forward/backward state: inputs to and activations of every
  /// layer, retained for the backward pass.
  struct Workspace {
    std::vector<AlignedVector<double>> inputs;  // inputs[l]: input row of layer l
    std::vector<AlignedVector<double>> acts;    // acts[l]: act(u) of layer l
    AlignedVector<double> grad_a, grad_b;       // ping-pong gradient buffers
  };

  /// E = N(d); records everything backward() needs into ws.
  double forward(const double* d, Workspace& ws) const;

  /// g_d[j] = seed * dE/dD_j given the workspace of the preceding forward().
  /// When `grads` is non-null (one entry per layer, pre-init'ed), parameter
  /// gradients are accumulated — the training path.
  void backward(const Workspace& ws, double* g_d,
                std::vector<DenseLayer::Grads>* grads = nullptr, double seed = 1.0) const;

  /// Multiply-add count of one forward evaluation.
  double flops_per_eval() const;

 private:
  std::size_t in_dim_ = 0;
  std::vector<DenseLayer> layers_;
};

}  // namespace dp::nn
