#include "nn/fitting_net.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dp::nn {

FittingNet::FittingNet(std::size_t in_dim, const std::vector<std::size_t>& hidden,
                       Activation act)
    : in_dim_(in_dim) {
  DP_CHECK(in_dim > 0);
  std::size_t in = in_dim;
  for (std::size_t w : hidden) {
    const Shortcut sc = (w == in) ? Shortcut::Identity : Shortcut::None;
    layers_.emplace_back(in, w, act, sc);
    in = w;
  }
  layers_.emplace_back(in, 1, Activation::Linear, Shortcut::None);
}

void FittingNet::init_random(Rng& rng) {
  for (auto& layer : layers_) layer.init_random(rng);
}

void FittingNet::set_activation(Activation a) {
  // The final layer stays linear: it is the energy read-out.
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) layers_[l].set_activation(a);
}

double FittingNet::forward(const double* d, Workspace& ws) const {
  const std::size_t L = layers_.size();
  ws.inputs.resize(L);
  ws.acts.resize(L);
  ws.inputs[0].assign(d, d + in_dim_);
  for (std::size_t l = 0; l < L; ++l) {
    const auto& layer = layers_[l];
    ws.acts[l].resize(layer.out_dim());
    AlignedVector<double> out(layer.out_dim());
    layer.forward_row(ws.inputs[l].data(), out.data(), ws.acts[l].data());
    if (l + 1 < L)
      ws.inputs[l + 1] = std::move(out);
    else
      return out[0];
  }
  return 0.0;  // unreachable: constructor guarantees at least one layer
}

void FittingNet::backward(const Workspace& ws, double* g_d,
                          std::vector<DenseLayer::Grads>* grads, double seed) const {
  const std::size_t L = layers_.size();
  DP_CHECK_MSG(ws.inputs.size() == L, "backward() without a preceding forward()");
  if (grads != nullptr) DP_CHECK(grads->size() == L);
  auto& g_out = const_cast<Workspace&>(ws).grad_a;
  auto& g_in = const_cast<Workspace&>(ws).grad_b;
  g_out.assign(1, seed);  // dLoss/dE
  for (std::size_t l = L; l-- > 0;) {
    g_in.assign(layers_[l].in_dim(), 0.0);
    layers_[l].backward_row(g_out.data(), ws.acts[l].data(), g_in.data(),
                            ws.inputs[l].data(),
                            grads != nullptr ? &(*grads)[l] : nullptr);
    std::swap(g_out, g_in);
  }
  std::copy(g_out.begin(), g_out.end(), g_d);
}

double FittingNet::flops_per_eval() const {
  double flops = 0.0;
  for (const auto& layer : layers_)
    flops += static_cast<double>(layer.in_dim()) * static_cast<double>(layer.out_dim());
  return flops;
}

}  // namespace dp::nn
