// A minimal dense row-major matrix. This is the only tensor abstraction the
// library needs: the DP model is a pipeline of small GEMMs and elementwise
// maps over per-atom matrices.
#pragma once

#include <cstddef>
#include <utility>

#include "common/aligned.hpp"
#include "common/error.hpp"

namespace dp::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) { resize(rows, cols); }

  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(double v) {
    for (auto& x : data_) x = v;
  }

  friend bool same_shape(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  AlignedVector<double> data_;
};

/// Max |a - b| over all entries; shapes must match.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Frobenius norm.
double frobenius_norm(const Matrix& a);

}  // namespace dp::nn
