#include "nn/embedding_net.hpp"

#include "common/error.hpp"

namespace dp::nn {

EmbeddingNet::EmbeddingNet(const std::vector<std::size_t>& widths, Activation act)
    : widths_(widths) {
  DP_CHECK_MSG(!widths.empty(), "embedding net needs at least one layer");
  std::size_t in = 1;
  for (std::size_t w : widths) {
    const Shortcut sc = (w == 2 * in) ? Shortcut::Concat : Shortcut::None;
    layers_.emplace_back(in, w, act, sc);
    in = w;
  }
}

void EmbeddingNet::init_random(Rng& rng) {
  for (auto& layer : layers_) layer.init_random(rng);
}

void EmbeddingNet::set_activation(Activation a) {
  for (auto& layer : layers_) layer.set_activation(a);
}

void EmbeddingNet::forward_batch(const double* s, std::size_t n, Matrix& g) const {
  Matrix x(n, 1);
  for (std::size_t i = 0; i < n; ++i) x(i, 0) = s[i];
  Matrix y;
  for (const auto& layer : layers_) {
    layer.forward_batch(x, y);
    std::swap(x, y);
  }
  g = std::move(x);
}

void EmbeddingNet::forward_batch_ws(const double* s, std::size_t n, Matrix& g,
                                    BatchWorkspace& ws) const {
  const std::size_t L = layers_.size();
  ws.inputs.resize(L);
  ws.acts.resize(L);
  ws.inputs[0].resize(n, 1);
  for (std::size_t i = 0; i < n; ++i) ws.inputs[0](i, 0) = s[i];
  for (std::size_t l = 0; l < L; ++l) {
    Matrix& out = (l + 1 < L) ? ws.inputs[l + 1] : g;
    layers_[l].forward_batch_ws(ws.inputs[l], out, ws.acts[l]);
  }
}

void EmbeddingNet::backward_batch(const BatchWorkspace& ws, const Matrix& g_g, double* g_s,
                                  std::vector<DenseLayer::Grads>* grads) const {
  const std::size_t L = layers_.size();
  DP_CHECK_MSG(ws.inputs.size() == L, "backward_batch without forward_batch_ws");
  if (grads != nullptr) DP_CHECK(grads->size() == L);
  Matrix g_out = g_g, g_in;
  for (std::size_t l = L; l-- > 0;) {
    layers_[l].backward_batch(g_out, ws.acts[l], g_in, &ws.inputs[l],
                              grads != nullptr ? &(*grads)[l] : nullptr);
    std::swap(g_out, g_in);
  }
  if (g_s != nullptr)
    for (std::size_t i = 0; i < g_out.rows(); ++i) g_s[i] = g_out(i, 0);
}

void EmbeddingNet::eval(double s, double* g) const {
  AlignedVector<double> x(1, s), y;
  for (const auto& layer : layers_) {
    y.resize(layer.out_dim());
    layer.forward_row(x.data(), y.data());
    x = y;
  }
  for (std::size_t j = 0; j < x.size(); ++j) g[j] = x[j];
}

void EmbeddingNet::eval_jet(double s, double* g, double* dg, double* d2g) const {
  AlignedVector<double> x(1, s), dx(1, 1.0), d2x(1, 0.0);
  AlignedVector<double> y, dy, d2y;
  for (const auto& layer : layers_) {
    const std::size_t out = layer.out_dim();
    y.resize(out);
    dy.resize(out);
    d2y.resize(out);
    layer.forward_jet(x.data(), dx.data(), d2x.data(), y.data(), dy.data(), d2y.data());
    x = y;
    dx = dy;
    d2x = d2y;
  }
  for (std::size_t j = 0; j < x.size(); ++j) {
    g[j] = x[j];
    dg[j] = dx[j];
    d2g[j] = d2x[j];
  }
}

double EmbeddingNet::flops_per_scalar() const {
  // Multiply-add counted as one operation, matching the paper's
  // d1 + 10*d1^2 for the {d1, 2 d1, 4 d1} architecture.
  double flops = 0.0;
  for (const auto& layer : layers_)
    flops += static_cast<double>(layer.in_dim()) * static_cast<double>(layer.out_dim());
  return flops;
}

}  // namespace dp::nn
