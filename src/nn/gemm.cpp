#include "nn/gemm.hpp"

#include <cstring>

namespace dp::nn {

namespace {
// The k-inner accumulation order below streams B row-by-row, which is the
// cache-friendly order for row-major operands of the sizes used here.
inline void gemm_kernel(const double* a, const double* b, double* c,
                        std::size_t m, std::size_t k, std::size_t n, bool accumulate) {
  // A zero-row/column product is a legal no-op (the compact env layout
  // feeds an empty batch for an atom with no neighbors), but its output
  // pointer may be null — keep it away from memset's nonnull contract.
  if (m == 0 || n == 0) return;
  if (!accumulate) std::memset(c, 0, m * n * sizeof(double));
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = arow[p];
      const double* brow = b + p * n;
#pragma omp simd
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}
}  // namespace

void gemm(const double* a, const double* b, double* c,
          std::size_t m, std::size_t k, std::size_t n) {
  gemm_kernel(a, b, c, m, k, n, /*accumulate=*/false);
}

void gemm_acc(const double* a, const double* b, double* c,
              std::size_t m, std::size_t k, std::size_t n) {
  gemm_kernel(a, b, c, m, k, n, /*accumulate=*/true);
}

void gemm_tn_acc(const double* a, const double* b, double* c,
                 std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a + p * m;
    const double* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      double* crow = c + i * n;
#pragma omp simd
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_tn(const double* a, const double* b, double* c,
             std::size_t m, std::size_t k, std::size_t n) {
  if (m == 0 || n == 0) return;
  std::memset(c, 0, m * n * sizeof(double));
  // C += A^T B accumulated as a sum over k rank-1 updates, each touching one
  // row of A and one row of B — exactly the outer-product form the fused
  // kernel of the paper uses (Fig 4 (c)).
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a + p * m;
    const double* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      double* crow = c + i * n;
#pragma omp simd
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt(const double* a, const double* b, double* c,
             std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b + j * k;
      double acc = 0.0;
#pragma omp simd reduction(+ : acc)
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

void affine(const double* x, const double* w, const double* bias, double* y,
            std::size_t k, std::size_t n) {
  if (bias != nullptr) {
    std::memcpy(y, bias, n * sizeof(double));
  } else {
    std::memset(y, 0, n * sizeof(double));
  }
  gemv_acc(x, w, y, k, n);
}

void gemv_acc(const double* x, const double* w, double* y, std::size_t k, std::size_t n) {
  for (std::size_t p = 0; p < k; ++p) {
    const double xv = x[p];
    const double* wrow = w + p * n;
#pragma omp simd
    for (std::size_t j = 0; j < n; ++j) y[j] += xv * wrow[j];
  }
}

void gemv_t(const double* g_out, const double* w, double* g_in, std::size_t k, std::size_t n) {
  for (std::size_t p = 0; p < k; ++p) {
    const double* wrow = w + p * n;
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (std::size_t j = 0; j < n; ++j) acc += g_out[j] * wrow[j];
    g_in[p] = acc;
  }
}

}  // namespace dp::nn
