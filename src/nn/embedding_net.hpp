// The embedding net: a smooth map g : R -> R^M applied to every entry of
// s(r_ij) (paper Sec 2.1, Fig 1 (c)/(e)).
//
// Layer 0 expands the scalar to d1 channels (tanh); each following layer
// doubles the width with a concat shortcut, ending at M = widths.back().
// Because the input is a single scalar, forward-mode differentiation gives
// exact dG/ds and d2G/ds2 — used for forces and for fitting the quintic
// tabulation segments.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/dense_layer.hpp"
#include "nn/tensor.hpp"

namespace dp::nn {

class EmbeddingNet {
 public:
  EmbeddingNet() = default;
  /// widths e.g. {32, 64, 128}: layer widths after each of the three layers.
  explicit EmbeddingNet(const std::vector<std::size_t>& widths,
                        Activation act = Activation::Tanh);

  void init_random(Rng& rng);

  std::size_t output_dim() const { return widths_.empty() ? 0 : widths_.back(); }
  const std::vector<std::size_t>& widths() const { return widths_; }
  std::vector<DenseLayer>& layers() { return layers_; }
  const std::vector<DenseLayer>& layers() const { return layers_; }
  void set_activation(Activation a);

  /// Baseline batched execution: G (n x M) from the n scalars s[i]. This is
  /// the GEMM pipeline of Fig 1 (e) that the tabulation replaces.
  void forward_batch(const double* s, std::size_t n, Matrix& g) const;

  /// Per-layer state retained by forward_batch_ws for backward_batch.
  struct BatchWorkspace {
    std::vector<Matrix> inputs;  // inputs[l]: input matrix of layer l
    std::vector<Matrix> acts;    // acts[l]: act(u) of layer l
  };

  /// Batched forward retaining activations; G (n x M).
  void forward_batch_ws(const double* s, std::size_t n, Matrix& g, BatchWorkspace& ws) const;

  /// Batched reverse-mode: g_s[i] = sum_j gG(i, j) * dG(i, j)/ds_i.
  /// g_s may be null (training only needs parameter gradients); `grads`
  /// (one per layer) accumulates dLoss/dW when non-null.
  void backward_batch(const BatchWorkspace& ws, const Matrix& g_g, double* g_s,
                      std::vector<DenseLayer::Grads>* grads = nullptr) const;

  /// Single-scalar evaluation, g has length M.
  void eval(double s, double* g) const;

  /// Value + first + second derivative with respect to s (each length M).
  void eval_jet(double s, double* g, double* dg, double* d2g) const;

  /// FLOPs per input scalar of the batched (original-model) execution,
  /// matching the paper's count N_m*(d1 + 10*d1^2) per atom for {d1,2d1,4d1}.
  double flops_per_scalar() const;

 private:
  std::vector<std::size_t> widths_;
  std::vector<DenseLayer> layers_;
};

}  // namespace dp::nn
