// Small dense linear algebra kernels.
//
// The matrices in the DP pipeline are small-by-skinny (N_m x 4, N_m x M,
// hidden widths <= 240), so a register-blocked loop nest beats calling out to
// a full BLAS for this workload and keeps the library dependency-free.
#pragma once

#include <cstddef>

namespace dp::nn {

/// C[m x n] = A[m x k] * B[k x n]   (row-major, C overwritten)
void gemm(const double* a, const double* b, double* c,
          std::size_t m, std::size_t k, std::size_t n);

/// C[m x n] += A[m x k] * B[k x n]
void gemm_acc(const double* a, const double* b, double* c,
              std::size_t m, std::size_t k, std::size_t n);

/// C[m x n] = A^T[k x m] * B[k x n]  — A stored as k x m row-major.
/// This is the R~^T G contraction shape: k = N_m rows are reduced.
void gemm_tn(const double* a, const double* b, double* c,
             std::size_t m, std::size_t k, std::size_t n);

/// C[m x n] += A^T[k x m] * B[k x n] — accumulating variant (per-type blocks
/// of the environment matrix are contracted into one A matrix).
void gemm_tn_acc(const double* a, const double* b, double* c,
                 std::size_t m, std::size_t k, std::size_t n);

/// C[m x n] = A[m x k] * B^T[n x k]  — B stored as n x k row-major.
void gemm_nt(const double* a, const double* b, double* c,
             std::size_t m, std::size_t k, std::size_t n);

/// y[n] = x[k] * W[k x n] + b[n]   (b may be nullptr)
void affine(const double* x, const double* w, const double* bias, double* y,
            std::size_t k, std::size_t n);

/// y[n] += x[k] * W[k x n]
void gemv_acc(const double* x, const double* w, double* y, std::size_t k, std::size_t n);

/// g_in[k] = g_out[n] * W^T  i.e. g_in[j] = sum_n g_out[i] W[j,i] — the
/// reverse-mode counterpart of `affine`.
void gemv_t(const double* g_out, const double* w, double* g_in, std::size_t k, std::size_t n);

}  // namespace dp::nn
