// A fully connected layer with the shortcut variants the DP model uses.
//
//   None:     y = act(x W + b)                        (first layers, output)
//   Identity: y = x + act(x W + b)                    (fitting-net hidden)
//   Concat:   y = (x, x) + act(x W + b), out = 2 in   (embedding-net growth)
//
// Inference needs three evaluation modes:
//   * batched forward over many rows (baseline embedding path, GEMM-shaped),
//   * forward "jet" propagation of (value, d/ds, d2/ds2) for the scalar-input
//     embedding net (forces + tabulation need exact input derivatives),
//   * reverse-mode for a single row (fitting net produces dE/dD).
#pragma once

#include <cstddef>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "common/tanh_table.hpp"
#include "nn/tensor.hpp"

namespace dp::nn {

enum class Activation { Tanh, TanhTabulated, Linear };
enum class Shortcut { None, Identity, Concat };

class DenseLayer {
 public:
  DenseLayer() = default;
  DenseLayer(std::size_t in, std::size_t out, Activation act, Shortcut shortcut);

  /// Gaussian init: W ~ N(0, 1/in), b ~ N(0, 0.1). This stands in for a
  /// trained model; the optimization experiments only depend on the network
  /// shape and smoothness (see DESIGN.md substitutions).
  void init_random(Rng& rng);

  std::size_t in_dim() const { return in_; }
  std::size_t out_dim() const { return out_; }
  Activation activation() const { return act_; }
  Shortcut shortcut() const { return shortcut_; }
  void set_activation(Activation a) { act_ = a; }

  Matrix& weights() { return w_; }
  const Matrix& weights() const { return w_; }
  AlignedVector<double>& bias() { return b_; }
  const AlignedVector<double>& bias() const { return b_; }

  /// Batched forward: y (n x out) from x (n x in).
  void forward_batch(const Matrix& x, Matrix& y) const;

  /// Single-row forward. `act_save` (length out, may be nullptr) receives the
  /// pure activation value act(xW+b) needed by backward_row.
  void forward_row(const double* x, double* y, double* act_save = nullptr) const;

  /// Parameter gradients accumulated by the training backward passes.
  struct Grads {
    Matrix w;                  // same shape as weights
    AlignedVector<double> b;   // same shape as bias
    void init(const DenseLayer& layer) {
      w.resize(layer.in_dim(), layer.out_dim());
      b.assign(layer.out_dim(), 0.0);
    }
    void zero() {
      w.fill(0.0);
      for (auto& v : b) v = 0.0;
    }
  };

  /// Reverse mode for one row: g_in = dE/dx given g_out = dE/dy and the saved
  /// activation values from forward_row. g_in must not alias g_out.
  /// When `grads` is non-null, dE/dW and dE/db are accumulated into it
  /// (requires the forward input row x).
  void backward_row(const double* g_out, const double* act_saved, double* g_in,
                    const double* x = nullptr, Grads* grads = nullptr) const;

  /// Batched forward that also retains the pure activation values needed by
  /// backward_batch (one row per sample).
  void forward_batch_ws(const Matrix& x, Matrix& y, Matrix& act_save) const;

  /// Batched reverse mode: g_in (n x in) from g_out (n x out) and the saved
  /// activations. This is what TensorFlow does for the embedding net when
  /// forces are requested (baseline path). When `grads` is non-null, weight
  /// and bias gradients are accumulated (requires the forward inputs x).
  void backward_batch(const Matrix& g_out, const Matrix& act_saved, Matrix& g_in,
                      const Matrix* x = nullptr, Grads* grads = nullptr) const;

  /// Forward-mode propagation of value + first + second derivative with
  /// respect to a single upstream scalar input.
  void forward_jet(const double* x, const double* dx, const double* d2x,
                   double* y, double* dy, double* d2y) const;

 private:
  double activate(double u) const;
  double activate_deriv_from_value(double a) const;  // act'(u) given a=act(u)

  std::size_t in_ = 0, out_ = 0;
  Activation act_ = Activation::Tanh;
  Shortcut shortcut_ = Shortcut::None;
  Matrix w_;                  // in x out
  AlignedVector<double> b_;   // out
};

}  // namespace dp::nn
