#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

#include "common/error.hpp"

namespace dp::nn {

namespace {

constexpr std::uint32_t kMagic = 0x44504d44;  // "DMPD"
constexpr std::uint32_t kVersion = 1;

template <class T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DP_CHECK_MSG(static_cast<bool>(is), "unexpected end of model stream");
  return v;
}

void write_layer(std::ostream& os, const DenseLayer& layer) {
  write_pod<std::uint64_t>(os, layer.in_dim());
  write_pod<std::uint64_t>(os, layer.out_dim());
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(layer.activation()));
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(layer.shortcut()));
  os.write(reinterpret_cast<const char*>(layer.weights().data()),
           static_cast<std::streamsize>(layer.weights().size() * sizeof(double)));
  os.write(reinterpret_cast<const char*>(layer.bias().data()),
           static_cast<std::streamsize>(layer.bias().size() * sizeof(double)));
}

void read_layer_into(std::istream& is, DenseLayer& layer) {
  const auto in = read_pod<std::uint64_t>(is);
  const auto out = read_pod<std::uint64_t>(is);
  const auto act = static_cast<Activation>(read_pod<std::uint32_t>(is));
  const auto sc = static_cast<Shortcut>(read_pod<std::uint32_t>(is));
  DP_CHECK_MSG(in == layer.in_dim() && out == layer.out_dim(),
               "layer shape mismatch while loading model");
  DP_CHECK(sc == layer.shortcut());
  layer.set_activation(act);
  is.read(reinterpret_cast<char*>(layer.weights().data()),
          static_cast<std::streamsize>(layer.weights().size() * sizeof(double)));
  is.read(reinterpret_cast<char*>(layer.bias().data()),
          static_cast<std::streamsize>(layer.bias().size() * sizeof(double)));
  DP_CHECK_MSG(static_cast<bool>(is), "unexpected end of model stream");
}

}  // namespace

void save(std::ostream& os, const EmbeddingNet& net) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod<std::uint64_t>(os, net.widths().size());
  for (std::size_t w : net.widths()) write_pod<std::uint64_t>(os, w);
  for (const auto& layer : net.layers()) write_layer(os, layer);
}

void save(std::ostream& os, const FittingNet& net) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod<std::uint64_t>(os, net.input_dim());
  // hidden widths = all layers except the final linear read-out
  write_pod<std::uint64_t>(os, net.layers().size() - 1);
  for (std::size_t l = 0; l + 1 < net.layers().size(); ++l)
    write_pod<std::uint64_t>(os, net.layers()[l].out_dim());
  for (const auto& layer : net.layers()) write_layer(os, layer);
}

EmbeddingNet load_embedding(std::istream& is) {
  DP_CHECK_MSG(read_pod<std::uint32_t>(is) == kMagic, "bad model magic");
  DP_CHECK_MSG(read_pod<std::uint32_t>(is) == kVersion, "unsupported model version");
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<std::size_t> widths(n);
  for (auto& w : widths) w = read_pod<std::uint64_t>(is);
  EmbeddingNet net(widths);
  for (auto& layer : net.layers()) read_layer_into(is, layer);
  return net;
}

FittingNet load_fitting(std::istream& is) {
  DP_CHECK_MSG(read_pod<std::uint32_t>(is) == kMagic, "bad model magic");
  DP_CHECK_MSG(read_pod<std::uint32_t>(is) == kVersion, "unsupported model version");
  const auto in_dim = read_pod<std::uint64_t>(is);
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<std::size_t> hidden(n);
  for (auto& w : hidden) w = read_pod<std::uint64_t>(is);
  FittingNet net(in_dim, hidden);
  for (auto& layer : net.layers()) read_layer_into(is, layer);
  return net;
}

void save_to_file(const std::string& path, const EmbeddingNet& e, const FittingNet& f) {
  std::ofstream os(path, std::ios::binary);
  DP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  save(os, e);
  save(os, f);
}

void load_from_file(const std::string& path, EmbeddingNet& e, FittingNet& f) {
  std::ifstream is(path, std::ios::binary);
  DP_CHECK_MSG(is.is_open(), "cannot open " << path << " for reading");
  e = load_embedding(is);
  f = load_fitting(is);
}

}  // namespace dp::nn
