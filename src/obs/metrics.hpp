// Step-level metrics: counters, gauges, fixed-bucket histograms and a
// JSON(-lines) sink.
//
// The registry is the numeric side of the observability layer (the trace
// collector in trace.hpp is the timeline side). Hot paths update metrics
// through lock-free atomics; registration (name -> object) takes a mutex
// but call sites that run per MD step cache the returned reference, which
// stays valid for the life of the process: `clear()` resets values and
// drops recorded events but never destroys a registered metric.
//
// Sinks:
//   write_jsonl  — one JSON object per line (machine-readable trajectory
//                  files such as out.metrics.jsonl; validated line-by-line)
//   write_json   — a single JSON document (the BENCH_*.json figures)
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace dp::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins floating point metric.
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time copy of a histogram, with quantile estimation.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> bounds;               ///< upper bucket bounds, ascending
  std::vector<std::uint64_t> bucket_counts; ///< bounds.size() + 1 (overflow last)

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket that crosses the target rank; exact at bucket boundaries.
  double quantile(double q) const;
};

/// Fixed-bucket histogram. observe() is wait-free (per-bucket atomic adds);
/// the bucket layout is immutable after construction.
class Histogram {
 public:
  /// `bounds` are the ascending upper edges; an implicit overflow bucket
  /// catches everything above the last edge. Empty = default_time_bounds().
  explicit Histogram(std::vector<double> bounds = {});

  void observe(double x);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  HistogramSnapshot snapshot() const;
  double quantile(double q) const { return snapshot().quantile(q); }
  void reset();

  /// 1-2-5 ladder from 1 microsecond to 100 seconds — suits wall-clock
  /// durations in seconds, the dominant histogram use in this codebase.
  static std::vector<double> default_time_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// A timestamped structured record (e.g. one training epoch): numeric
/// fields plus an optional free-form label.
struct MetricEvent {
  std::string name;
  std::string label;
  std::vector<std::pair<std::string, double>> fields;
};

class MetricsRegistry {
 public:
  /// Process-wide instance used by the built-in instrumentation points.
  static MetricsRegistry& instance();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. References remain valid until destruction of
  /// the registry (clear() resets values but keeps the objects).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first creation; empty = default time bounds.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  void record_event(std::string name, std::vector<std::pair<std::string, double>> fields);
  void record_event(std::string name, std::string label,
                    std::vector<std::pair<std::string, double>> fields);

  /// One JSON object per line: metrics first, then events in record order.
  void write_jsonl(std::ostream& os) const;
  bool write_jsonl_file(const std::string& path) const;
  /// write_jsonl_file + fsync: used on fatal paths (and on every periodic
  /// rewrite while a flight recorder is armed) so an abort immediately
  /// after still leaves the full tail on disk.
  bool write_jsonl_file_sync(const std::string& path) const;
  /// Single JSON document: {"metrics": [...], "events": [...]}.
  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;

  std::size_t event_count() const;

  /// Resets every metric value and drops recorded events. Registered
  /// metric objects (and references to them) survive.
  void clear();

 private:
  // Serialization helpers called with mu_ already held by the public
  // write_jsonl/write_json entry points.
  void write_metric_objects(std::ostream& os, const char* sep, bool& first) const
      DP_REQUIRES(mu_);
  void write_event_objects(std::ostream& os, const char* sep, bool& first) const
      DP_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ DP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ DP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ DP_GUARDED_BY(mu_);
  std::vector<MetricEvent> events_ DP_GUARDED_BY(mu_);
};

}  // namespace dp::obs
