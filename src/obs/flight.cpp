#include "obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cmath>
#include <cstring>

namespace dp::obs {

namespace {

// ---------------------------------------------------------------------------
// Async-signal-safe building blocks. Everything below the line that the
// crash handler can reach uses only write/open/fsync/close plus pure
// computation on stack buffers — no stdio, no allocation, no locks.
// ---------------------------------------------------------------------------

DP_SIGNAL_SAFE void safe_write(int fd, const char* data, std::size_t len) noexcept {
  while (len > 0) {
    const ssize_t w = ::write(fd, data, len);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;  // nothing useful to do on a failing fd in a crash path
    }
    data += w;
    len -= static_cast<std::size_t>(w);
  }
}

DP_SIGNAL_SAFE std::size_t fmt_u64(char* out, std::uint64_t v) noexcept {
  char tmp[20];
  std::size_t t = 0;
  do {
    tmp[t++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < t; ++i) out[i] = tmp[t - 1 - i];
  return t;
}

DP_SIGNAL_SAFE std::size_t fmt_i64(char* out, std::int64_t v) noexcept {
  std::size_t n = 0;
  std::uint64_t u;
  if (v < 0) {
    out[n++] = '-';
    u = ~static_cast<std::uint64_t>(v) + 1;  // safe for INT64_MIN
  } else {
    u = static_cast<std::uint64_t>(v);
  }
  return n + fmt_u64(out + n, u);
}

/// Scientific notation with 9 significant digits: "d.ddddddddE[+-]dd".
/// Non-finite values (e.g. a torn read during a concurrent crash dump)
/// become 0 so the document always parses.
DP_SIGNAL_SAFE std::size_t fmt_double(char* out, double v) noexcept {
  if (!std::isfinite(v)) {
    out[0] = '0';
    return 1;
  }
  std::size_t n = 0;
  if (std::signbit(v)) {
    out[n++] = '-';
    v = -v;
  }
  if (v == 0.0) {
    out[n++] = '0';
    return n;
  }
  int exp10 = 0;
  while (v >= 10.0) {
    v *= 0.1;
    ++exp10;
  }
  while (v < 1.0) {
    v *= 10.0;
    --exp10;
  }
  // 9 significant digits; rounding can carry 9.99.. past 10.
  std::uint64_t digits = static_cast<std::uint64_t>(v * 1e8 + 0.5);
  if (digits >= 1000000000ull) {
    digits /= 10;
    ++exp10;
  }
  char tmp[20];
  const std::size_t t = fmt_u64(tmp, digits);  // always 9 chars here
  out[n++] = tmp[0];
  out[n++] = '.';
  for (std::size_t i = 1; i < t; ++i) out[n++] = tmp[i];
  out[n++] = 'e';
  out[n++] = exp10 < 0 ? '-' : '+';
  const int ae = exp10 < 0 ? -exp10 : exp10;
  n += fmt_u64(out + n, static_cast<std::uint64_t>(ae));
  return n;
}

/// Tiny buffered writer over a raw fd (cuts the dump to a handful of
/// write() calls instead of one per token).
class FdBuf {
 public:
  DP_SIGNAL_SAFE explicit FdBuf(int fd) noexcept : fd_(fd) {}
  DP_SIGNAL_SAFE ~FdBuf() noexcept { flush(); }

  DP_SIGNAL_SAFE void put(const char* s, std::size_t len) noexcept {
    if (len > sizeof(buf_)) {
      flush();
      safe_write(fd_, s, len);
      return;
    }
    if (n_ + len > sizeof(buf_)) flush();
    std::memcpy(buf_ + n_, s, len);
    n_ += len;
  }
  DP_SIGNAL_SAFE void lit(const char* s) noexcept { put(s, std::strlen(s)); }
  DP_SIGNAL_SAFE void u64(std::uint64_t v) noexcept {
    char t[24];
    put(t, fmt_u64(t, v));
  }
  DP_SIGNAL_SAFE void i64(std::int64_t v) noexcept {
    char t[24];
    put(t, fmt_i64(t, v));
  }
  DP_SIGNAL_SAFE void dbl(double v) noexcept {
    char t[32];
    put(t, fmt_double(t, v));
  }
  DP_SIGNAL_SAFE void flush() noexcept {
    if (n_ > 0) safe_write(fd_, buf_, n_);
    n_ = 0;
  }

 private:
  int fd_;
  std::size_t n_ = 0;
  char buf_[1024];
};

// Process-wide recorder table walked by the crash handler. Fixed capacity,
// lock-free registration; slots hold owning-thread recorders that outlive
// any crash (the MD driver keeps them alive for the whole run).
std::atomic<FlightRecorder*> g_recorders[FlightRecorder::kMaxRecorders];

std::atomic<FatalFlushHook> g_flush_hook{nullptr};
std::atomic<bool> g_handlers_installed{false};
// Re-entrancy latch: a crash inside the dump path must not recurse.
std::atomic<bool> g_dumping{false};

DP_SIGNAL_SAFE void crash_handler(int sig) noexcept {
  if (!g_dumping.exchange(true)) {
    static const char kBanner[] = "\n[dp] fatal signal, dumping flight recorders\n";
    safe_write(2, kBanner, sizeof(kBanner) - 1);
    dump_all_recorders();
    const FatalFlushHook hook = g_flush_hook.load(std::memory_order_acquire);
    if (hook != nullptr) hook();
  }
  // SA_RESETHAND restored the default disposition on entry; re-raising
  // terminates with the original signal (correct exit status, core file).
  ::raise(sig);
}

}  // namespace

FlightRecorder::FlightRecorder(int rank, std::size_t capacity) : rank_(rank) {
  std::size_t cap = 1;
  while (cap < capacity) cap <<= 1;
  cap_ = cap;
  mask_ = cap - 1;
  ring_.resize(cap_);
  path_[0] = '\0';
  set_output_dir(".");
}

FlightRecorder::~FlightRecorder() {
  if (registered_) {
    for (auto& slot : g_recorders) {
      FlightRecorder* self = this;
      if (slot.compare_exchange_strong(self, nullptr)) break;
    }
  }
}

void FlightRecorder::record(const FlightRecord& r) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  ring_[h & mask_] = r;
  head_.store(h + 1, std::memory_order_release);
}

std::size_t FlightRecorder::size() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  return h < cap_ ? static_cast<std::size_t>(h) : cap_;
}

std::int64_t FlightRecorder::last_step() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  if (h == 0) return -1;
  return ring_[(h - 1) & mask_].step;
}

DP_SIGNAL_SAFE void FlightRecorder::dump(int fd) const {
  FdBuf out(fd);
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t count = h < cap_ ? h : cap_;
  const std::uint64_t first = h - count;
  out.lit("{\n  \"rank\": ");
  out.i64(rank_);
  // The pid disambiguates rings from multi-process runs (each process
  // re-numbers ranks from its own world); getpid() is async-signal-safe.
  out.lit(",\n  \"pid\": ");
  out.i64(static_cast<std::int64_t>(::getpid()));
  out.lit(",\n  \"capacity\": ");
  out.u64(cap_);
  out.lit(",\n  \"count\": ");
  out.u64(count);
  out.lit(",\n  \"last_step\": ");
  out.i64(h == 0 ? -1 : ring_[(h - 1) & mask_].step);
  out.lit(",\n  \"records\": [");
  for (std::uint64_t i = 0; i < count; ++i) {
    const FlightRecord& r = ring_[(first + i) & mask_];
    out.lit(i == 0 ? "\n    {" : ",\n    {");
    out.lit("\"step\": ");
    out.i64(r.step);
    out.lit(", \"step_seconds\": ");
    out.dbl(r.step_seconds);
    out.lit(", \"force_seconds\": ");
    out.dbl(r.force_seconds);
    out.lit(", \"neighbor_seconds\": ");
    out.dbl(r.neighbor_seconds);
    out.lit(", \"comm_seconds\": ");
    out.dbl(r.comm_seconds);
    out.lit(", \"health_bits\": ");
    out.u64(r.health_bits);
    out.lit(", \"rebuilds\": ");
    out.u64(r.rebuilds);
    out.lit(", \"extrapolations\": ");
    out.u64(r.extrapolations);
    out.lit("}");
  }
  out.lit("\n  ]\n}\n");
  out.flush();
}

DP_SIGNAL_SAFE bool FlightRecorder::dump_to_file(const char* path) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  dump(fd);
  ::fsync(fd);
  ::close(fd);
  return true;
}

void FlightRecorder::set_output_dir(const char* dir) {
  char tail[48];
  std::size_t t = 0;
  const char prefix[] = "/flightrec.rank";
  std::memcpy(tail + t, prefix, sizeof(prefix) - 1);
  t += sizeof(prefix) - 1;
  t += fmt_i64(tail + t, rank_);
  const char suffix[] = ".json";
  std::memcpy(tail + t, suffix, sizeof(suffix) - 1);
  t += sizeof(suffix) - 1;
  std::size_t d = std::strlen(dir);
  while (d > 1 && dir[d - 1] == '/') --d;  // drop trailing slashes
  if (d + t + 1 > sizeof(path_)) d = sizeof(path_) - t - 1;
  std::memcpy(path_, dir, d);
  std::memcpy(path_ + d, tail, t);
  path_[d + t] = '\0';
}

void FlightRecorder::register_for_crash_dump() {
  if (registered_) return;
  for (auto& slot : g_recorders) {
    FlightRecorder* expected = nullptr;
    if (slot.compare_exchange_strong(expected, this)) {
      registered_ = true;
      return;
    }
  }
  // Table full: the recorder still works locally, it just will not be
  // dumped by the process-wide handler.
}

void install_crash_handlers() {
  if (g_handlers_installed.exchange(true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &crash_handler;
  // SA_RESETHAND: the default disposition is back in place before the
  // handler runs, so the final raise() terminates the process normally.
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT, SIGILL}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

DP_SIGNAL_SAFE int dump_all_recorders() noexcept {
  int dumped = 0;
  for (auto& slot : g_recorders) {
    const FlightRecorder* rec = slot.load(std::memory_order_acquire);
    if (rec == nullptr) continue;
    if (rec->dump_to_file(rec->output_path())) ++dumped;
  }
  return dumped;
}

void notify_fatal(const char* msg) noexcept {
  static const char kPrefix[] = "\n[dp] fatal: ";
  safe_write(2, kPrefix, sizeof(kPrefix) - 1);
  if (msg != nullptr) safe_write(2, msg, std::strlen(msg));
  safe_write(2, "\n", 1);
  if (!g_dumping.exchange(true)) {
    dump_all_recorders();
    const FatalFlushHook hook = g_flush_hook.load(std::memory_order_acquire);
    if (hook != nullptr) hook();
    // Only the winner re-arms (fatal may be caught — DP_CHECK throws). A
    // loser must not: it would drop the latch while the winner is still
    // dumping, letting a third fatal start a concurrent dump over the same
    // files.
    g_dumping.store(false);
  }
}

FatalFlushHook set_fatal_flush_hook(FatalFlushHook hook) noexcept {
  return g_flush_hook.exchange(hook, std::memory_order_acq_rel);
}

}  // namespace dp::obs
