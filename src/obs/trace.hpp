// Low-overhead timeline tracing with Chrome trace_event export.
//
// Spans are recorded into per-thread buffers — the hot path never touches a
// shared lock (each buffer has its own uncontended mutex so a concurrent
// flush cannot tear an event). Tracing is off by default; a disabled
// TraceSpan is two relaxed atomic loads, so instrumentation can stay
// compiled into the MD hot path.
//
// The collected events flush to Chrome trace_event JSON: open the file
// directly in chrome://tracing or https://ui.perfetto.dev. Ranks of the
// in-process message-passing runtime map to trace "processes" (pid = rank,
// set via set_thread_rank), threads to "tid", so a domain-decomposed run
// shows one swim-lane group per rank.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace dp::obs {

/// Global enable flag, checked inline on the hot path.
inline std::atomic<bool> g_trace_enabled{false};

/// Microseconds since the process-wide trace epoch (first use).
double trace_now_us();

struct TraceEvent {
  std::string name;
  const char* cat = "";  ///< static string: "md", "halo", "neighbor", ...
  char ph = 'X';         ///< 'X' complete span, 'i' instant
  double ts_us = 0.0;
  double dur_us = 0.0;
  int rank = 0;  ///< trace pid
  int tid = 0;   ///< per-thread id, assigned at first event
};

class TraceCollector {
 public:
  static TraceCollector& instance();

  void set_enabled(bool on) { g_trace_enabled.store(on, std::memory_order_relaxed); }
  static bool enabled() { return g_trace_enabled.load(std::memory_order_relaxed); }

  /// Labels events recorded by the calling thread with this rank (pid).
  static void set_thread_rank(int rank);
  static int thread_rank();

  /// Appends to the calling thread's buffer (no shared lock). Records even
  /// when the enabled flag is off — span call sites check enabled() first.
  void record_complete(std::string name, const char* cat, double ts_us, double dur_us);
  void record_instant(std::string name, const char* cat);

  /// Total events across all thread buffers (live and exited threads).
  std::size_t event_count() const;

  /// Chrome trace_event JSON: {"traceEvents":[...]} with per-rank process
  /// metadata, events sorted by timestamp.
  void write_chrome_trace(std::ostream& os) const;
  bool write_chrome_trace_file(const std::string& path) const;

  /// Drops buffered events (buffers of live threads stay registered).
  void clear();

 private:
  TraceCollector() = default;
};

/// RAII complete-span ('X') recorder. Costs ~nothing when tracing is off.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat) {
    if (TraceCollector::enabled()) {
      name_ = name;
      cat_ = cat;
      start_us_ = trace_now_us();
      active_ = true;
    }
  }
  ~TraceSpan() {
    if (active_)
      TraceCollector::instance().record_complete(name_, cat_, start_us_,
                                                 trace_now_us() - start_us_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  double start_us_ = 0.0;
  bool active_ = false;
};

}  // namespace dp::obs
