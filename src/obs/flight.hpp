// Crash-safe flight recorder: a fixed-size, allocation-free per-rank ring
// buffer of recent step events, dumped by an async-signal-safe handler when
// the process dies (SIGSEGV / SIGABRT / DP_CHECK failure).
//
// The metrics/trace layer answers "how did the run behave" after a clean
// exit; the flight recorder answers "what were the last N steps doing" when
// there is no clean exit — the black box of the paper's multi-hour runs,
// where a single rank segfaulting at step 40 million otherwise leaves
// nothing but a core file too large to copy off the machine.
//
// Constraints that shape the design:
//   * record() runs every step on every rank: no locks, no allocation, one
//     release store to publish a slot.
//   * dump() runs inside a signal handler: only async-signal-safe syscalls
//     (open/write/fsync/close), no stdio, no malloc, no std::string —
//     formatting is hand-rolled into stack buffers. Functions on this path
//     are annotated DP_SIGNAL_SAFE and policed by the dplint
//     `signal-safety` rule.
//   * Multiple recorders (one per rank thread) register into a fixed table
//     of atomic slots so one process-wide handler can dump all of them.
//
// The dump is a valid JSON document (`flightrec.rank<k>.json`), newest
// record last; `tools/dpblackbox` pretty-prints one or merges several.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/aligned.hpp"

/// Marks a function as running in async-signal-handler context: it must not
/// allocate, lock, or use stdio/iostreams. Expands to nothing — the marker
/// exists for readers and for tools/dplint's `signal-safety` rule, which
/// scans the body of any function carrying it.
#define DP_SIGNAL_SAFE

namespace dp::obs {

/// One step's worth of black-box state. Plain data, fixed size, copied
/// whole into the ring; add fields sparingly (capacity 256 records costs
/// ~18 KB per rank as is).
struct FlightRecord {
  std::int64_t step = 0;
  double step_seconds = 0.0;     ///< wall time of the step
  double force_seconds = 0.0;    ///< force/descriptor phase
  double neighbor_seconds = 0.0; ///< neighbor build (0 when not rebuilt)
  double comm_seconds = 0.0;     ///< halo exchange + reductions
  std::uint32_t health_bits = 0; ///< HealthMonitor::state_bits()
  std::uint32_t rebuilds = 0;    ///< cumulative neighbor rebuilds
  std::uint64_t extrapolations = 0; ///< cumulative table extrapolations
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;
  /// Max simultaneously registered recorders (ranks) per process.
  static constexpr std::size_t kMaxRecorders = 64;

  /// Capacity is rounded up to a power of two. All memory is allocated
  /// here, never in record()/dump().
  explicit FlightRecorder(int rank = 0,
                          std::size_t capacity = kDefaultCapacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Single-writer append; wait-free. The slot is fully written before the
  /// head advances (release), so a concurrent dump (acquire) only ever
  /// reads committed records.
  void record(const FlightRecord& r);

  /// Number of committed records (saturates at capacity).
  std::size_t size() const;
  std::size_t capacity() const { return cap_; }
  int rank() const { return rank_; }
  /// Step of the most recent committed record, or -1 when empty.
  std::int64_t last_step() const;

  /// Writes the ring as a JSON document to an already-open fd, oldest
  /// record first. Async-signal-safe: write() only, stack buffers.
  DP_SIGNAL_SAFE void dump(int fd) const;

  /// open() + dump() + fsync() + close() to `path`. Async-signal-safe.
  /// Returns false if the file could not be created.
  DP_SIGNAL_SAFE bool dump_to_file(const char* path) const;

  /// Dump file path for this recorder: `<dir>/flightrec.rank<k>.json`.
  /// `dir` is copied into a fixed internal buffer (truncated if needed);
  /// call once at setup, before any crash can happen.
  void set_output_dir(const char* dir);
  DP_SIGNAL_SAFE const char* output_path() const { return path_; }

  /// Registers this recorder in the process-wide table the crash handler
  /// walks. Idempotent; the destructor unregisters.
  void register_for_crash_dump();

 private:
  int rank_ = 0;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  AlignedVector<FlightRecord> ring_;
  std::atomic<std::uint64_t> head_{0};  ///< next slot index (monotonic)
  char path_[256];
  bool registered_ = false;
};

/// Installs SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that dump every
/// registered recorder and then re-raise with the default disposition (so
/// exit codes and core dumps behave as without the recorder). Idempotent.
void install_crash_handlers();

/// Fatal-path entry point for non-signal failures (DP_CHECK): writes
/// `msg` to stderr with write(2), dumps every registered recorder, and
/// invokes the registered flush hook (metrics sink fsync). Does NOT
/// terminate — the caller decides (DP_CHECK continues to throw).
void notify_fatal(const char* msg) noexcept;

/// Hook invoked by notify_fatal and the crash handler after dumping, e.g.
/// to fsync the metrics JSONL sink. Must be async-signal-safe. Returns the
/// previous hook.
using FatalFlushHook = void (*)() noexcept;
FatalFlushHook set_fatal_flush_hook(FatalFlushHook hook) noexcept;

/// Dumps every registered recorder now (async-signal-safe). Returns the
/// number of recorders dumped. Exposed for tests and for notify_fatal.
DP_SIGNAL_SAFE int dump_all_recorders() noexcept;

}  // namespace dp::obs
