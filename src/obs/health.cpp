#include "obs/health.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace dp::obs {

const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kOk: return "ok";
    case HealthState::kWarn: return "warn";
    case HealthState::kFatal: return "fatal";
  }
  return "ok";
}

Watchdog::Watchdog(WatchdogSpec spec) : spec_(std::move(spec)) {
  if (spec_.raise_after < 1) spec_.raise_after = 1;
  if (spec_.clear_after < 1) spec_.clear_after = 1;
}

HealthState Watchdog::level_of(double value) const {
  if (std::isnan(value)) return HealthState::kOk;
  if (spec_.above) {
    if (value >= spec_.fatal) return HealthState::kFatal;
    if (value >= spec_.warn) return HealthState::kWarn;
  } else {
    if (value <= spec_.fatal) return HealthState::kFatal;
    if (value <= spec_.warn) return HealthState::kWarn;
  }
  return HealthState::kOk;
}

HealthState Watchdog::observe(std::int64_t step, double value) {
  if (std::isnan(value)) return state_;
  ++samples_;
  last_value_ = value;
  const HealthState level = level_of(value);
  if (level > state_) {
    // Track the *least* severe level seen during the run: a streak of
    // mixed warn/fatal samples only promotes to what every sample agreed
    // on; a fatal sample inside the streak still raises to fatal once the
    // run is long enough because fatal >= warn keeps the run alive.
    worse_min_ = (worse_run_ == 0) ? level : std::min(worse_min_, level);
    ++worse_run_;
    better_run_ = 0;
    if (worse_run_ >= spec_.raise_after) {
      state_ = worse_min_;
      ++transitions_;
      last_transition_step_ = step;
      worse_run_ = 0;
    }
  } else if (level < state_) {
    better_max_ = (better_run_ == 0) ? level : std::max(better_max_, level);
    ++better_run_;
    worse_run_ = 0;
    if (better_run_ >= spec_.clear_after) {
      state_ = better_max_;
      ++transitions_;
      last_transition_step_ = step;
      better_run_ = 0;
    }
  } else {
    // A sample matching the current state resets both streaks — the
    // hysteresis requires *consecutive* evidence.
    worse_run_ = 0;
    better_run_ = 0;
  }
  return state_;
}

HealthState HealthReport::worst() const {
  HealthState w = HealthState::kOk;
  for (const auto& e : entries) w = std::max(w, e.state);
  return w;
}

const HealthReport::Entry* HealthReport::find(std::string_view name) const {
  for (const auto& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

namespace {
constexpr const char* kDrift = "health.energy_drift";
constexpr const char* kTemp = "health.temperature_ratio";
constexpr const char* kForce = "health.max_force";
constexpr const char* kOccupancy = "health.neighbor_occupancy";
constexpr const char* kImbalance = "health.step_imbalance";
constexpr const char* kExtrap = "health.extrapolation_rate";
}  // namespace

HealthMonitor::HealthMonitor(const HealthConfig& cfg, MetricsRegistry* sink)
    : sink_(sink), cfg_(cfg), standard_(true) {
  add({kDrift, cfg.drift_warn, cfg.drift_fatal, true, cfg.raise_after,
       cfg.clear_after, "|dE|/|E0|",
       "check timestep/thermostat; NVE energy is leaving its baseline"});
  add({kTemp, cfg.temp_warn_factor, cfg.temp_fatal_factor, true,
       cfg.raise_after, cfg.clear_after, "T/T_target",
       "system is heating; inspect forces or reduce dt"});
  add({kForce, cfg.force_warn, cfg.force_fatal, true, cfg.raise_after,
       cfg.clear_after, "eV/A",
       "atoms too close or model extrapolating; check initial structure"});
  add({kOccupancy, cfg.occupancy_warn, cfg.occupancy_fatal, true,
       cfg.raise_after, cfg.clear_after, "longest/reserved",
       "raise neighbor slot reservation before lists overflow"});
  add({kImbalance, cfg.imbalance_warn, cfg.imbalance_fatal, true,
       cfg.raise_after, cfg.clear_after, "max/mean",
       "rank decomposition is skewed; rebalance the grid"});
  add({kExtrap, cfg.extrapolation_warn, cfg.extrapolation_fatal, true,
       cfg.raise_after, cfg.clear_after, "extrapolations/atom/step",
       "configurations outside training data; widen the tabulated domain"});
}

Watchdog& HealthMonitor::add(WatchdogSpec spec) {
  dogs_.push_back(std::make_unique<Watchdog>(std::move(spec)));
  return *dogs_.back();
}

Watchdog* HealthMonitor::find(std::string_view name) {
  for (auto& d : dogs_)
    if (d->spec().name == name) return d.get();
  return nullptr;
}

const Watchdog* HealthMonitor::find(std::string_view name) const {
  for (const auto& d : dogs_)
    if (d->spec().name == name) return d.get();
  return nullptr;
}

HealthState HealthMonitor::observe(std::string_view name, std::int64_t step,
                                   double value) {
  Watchdog* d = find(name);
  if (!d) return HealthState::kOk;
  const HealthState before = d->state();
  const HealthState after = d->observe(step, value);
  if (after != before && sink_) {
    // Label = "<watchdog> -> <state>": grep-able in the JSONL stream; the
    // numeric state rides along for machine consumers.
    sink_->record_event(d->spec().name,
                        std::string(d->spec().name) + " -> " + to_string(after),
                        {{"step", static_cast<double>(step)},
                         {"value", value},
                         {"warn", d->spec().warn},
                         {"fatal", d->spec().fatal},
                         {"state", static_cast<double>(encode(after))}});
  }
  return after;
}

double HealthMonitor::drift_value(double total_energy) {
  if (baseline_n_ < cfg_.drift_window) {
    ++baseline_n_;
    baseline_sum_ += total_energy;
  }
  const double baseline = baseline_sum_ / static_cast<double>(baseline_n_);
  const double denom = std::max(std::abs(baseline), 1e-300);
  return std::abs(total_energy - baseline) / denom;
}

HealthState HealthMonitor::observe_step(const StepSignals& s) {
  last_step_ = s.step;
  if (standard_) {
    if (!std::isnan(s.total_energy))
      observe(kDrift, s.step, drift_value(s.total_energy));
    if (!std::isnan(s.temperature) && cfg_.target_temperature > 0.0)
      observe(kTemp, s.step, s.temperature / cfg_.target_temperature);
    if (!std::isnan(s.max_force)) observe(kForce, s.step, s.max_force);
    if (!std::isnan(s.neighbor_occupancy))
      observe(kOccupancy, s.step, s.neighbor_occupancy);
    if (!std::isnan(s.step_imbalance))
      observe(kImbalance, s.step, s.step_imbalance);
    if (!std::isnan(s.extrapolations)) {
      if (!std::isnan(extrap_last_) && s.step > extrap_last_step_ &&
          s.n_atoms > 0.0) {
        const double steps =
            static_cast<double>(s.step - extrap_last_step_);
        const double rate =
            (s.extrapolations - extrap_last_) / (s.n_atoms * steps);
        observe(kExtrap, s.step, std::max(rate, 0.0));
      }
      extrap_last_ = s.extrapolations;
      extrap_last_step_ = s.step;
    }
  }
  return worst();
}

HealthState HealthMonitor::worst() const {
  HealthState w = HealthState::kOk;
  for (const auto& d : dogs_) w = std::max(w, d->state());
  return w;
}

std::uint32_t HealthMonitor::state_bits() const {
  std::uint32_t bits = 0;
  const std::size_t n = std::min<std::size_t>(dogs_.size(), 16);
  for (std::size_t i = 0; i < n; ++i)
    bits |= static_cast<std::uint32_t>(encode(dogs_[i]->state())) << (2 * i);
  return bits;
}

HealthReport HealthMonitor::report() const {
  HealthReport r;
  r.step = last_step_;
  r.entries.reserve(dogs_.size());
  for (const auto& d : dogs_) {
    r.entries.push_back({d->spec().name, d->state(), d->last_value(),
                         d->spec().warn, d->spec().fatal, d->spec().units,
                         d->transitions(), d->last_transition_step()});
  }
  return r;
}

void HealthMonitor::publish_gauges(MetricsRegistry& reg) const {
  for (const auto& d : dogs_) {
    reg.gauge(d->spec().name).set(d->last_value());
    reg.gauge(d->spec().name + ".state")
        .set(static_cast<double>(encode(d->state())));
  }
  reg.gauge("health.worst_state").set(static_cast<double>(encode(worst())));
}

HealthState HealthMonitor::decode(int v) {
  if (v >= 2) return HealthState::kFatal;
  if (v == 1) return HealthState::kWarn;
  return HealthState::kOk;
}

}  // namespace dp::obs
