// Minimal JSON emission helpers shared by the metrics and trace sinks.
//
// Writers only — the observability layer never parses JSON. Numbers are
// emitted with enough digits to round-trip a double, and non-finite values
// are clamped to 0 so the output always satisfies strict parsers
// (python3 -m json.tool, chrome://tracing).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>

namespace dp::obs {

/// Writes `s` as a double-quoted JSON string with the mandatory escapes.
inline void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Writes a double as a JSON number (never NaN/Inf, which JSON forbids).
inline void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  // %.17g round-trips any double; trailing precision is harmless to parsers.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

inline void json_number(std::ostream& os, std::uint64_t v) { os << v; }

}  // namespace dp::obs
