// Run-health watchdogs: streaming invariant monitors evaluated every MD
// step, the *online* counterpart of the post-hoc metrics/trace layer.
//
// A 10-billion-atom campaign lives or dies on noticing degradation early:
// load imbalance, neighbor-slot overflow, model extrapolation and
// integration drift all corrupt a multi-hour run silently long before
// anything crashes (paper Sec 6.1). Each Watchdog turns one scalar signal
// into a three-level state (ok / warn / fatal) with hysteresis, so a driver
// — or the dynamic rebalancer this feeds — can act on a stable answer
// instead of a flapping threshold comparison.
//
// Thread model: a HealthMonitor belongs to one rank (thread) and is never
// shared; distributed runs evaluate one monitor per rank on globally
// reduced signals and allreduce-max the encoded states so every rank
// agrees on the worst (see parallel/distributed_md.cpp). Emission into the
// (thread-safe) MetricsRegistry sink happens only on state transitions, so
// the steady healthy state costs a handful of branches per step.
//
// Capability note: single-owner by design means there is nothing here for
// DP_GUARDED_BY to name — the absence of dp::Mutex in this header is the
// annotation (docs/STATIC_ANALYSIS.md, capability section).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dp::obs {

class MetricsRegistry;

enum class HealthState : int { kOk = 0, kWarn = 1, kFatal = 2 };

const char* to_string(HealthState s);

struct WatchdogSpec {
  std::string name;         ///< metric-style name, e.g. "health.energy_drift"
  double warn = std::numeric_limits<double>::infinity();
  double fatal = std::numeric_limits<double>::infinity();
  bool above = true;        ///< trip when value >= threshold (false: <=)
  int raise_after = 1;      ///< consecutive breaching samples before raising
  int clear_after = 3;      ///< consecutive healthy samples before clearing
  std::string units;        ///< for reports and the docs catalog
  std::string action;       ///< suggested operator action
};

/// One streaming invariant monitor. observe() is O(1); the state machine
/// requires `raise_after` consecutive samples beyond a threshold to raise
/// and `clear_after` consecutive samples back in bounds to clear, so a
/// signal hovering exactly at the threshold cannot flap warn/ok every step.
class Watchdog {
 public:
  explicit Watchdog(WatchdogSpec spec);

  HealthState observe(std::int64_t step, double value);

  HealthState state() const { return state_; }
  double last_value() const { return last_value_; }
  std::uint64_t samples() const { return samples_; }
  std::uint64_t transitions() const { return transitions_; }
  std::int64_t last_transition_step() const { return last_transition_step_; }
  const WatchdogSpec& spec() const { return spec_; }

 private:
  HealthState level_of(double value) const;

  WatchdogSpec spec_;
  HealthState state_ = HealthState::kOk;
  double last_value_ = 0.0;
  std::uint64_t samples_ = 0;
  std::uint64_t transitions_ = 0;
  std::int64_t last_transition_step_ = -1;
  // Consecutive-sample runs toward a worse / better state (hysteresis).
  int worse_run_ = 0;
  int better_run_ = 0;
  HealthState worse_min_ = HealthState::kFatal;
  HealthState better_max_ = HealthState::kOk;
};

/// Point-in-time snapshot, consumable in-process (the dynamic-rebalance
/// hook reads this) and serializable through the JSONL sink.
struct HealthReport {
  struct Entry {
    std::string name;
    HealthState state = HealthState::kOk;
    double value = 0.0;
    double warn = 0.0;
    double fatal = 0.0;
    std::string units;
    std::uint64_t transitions = 0;
    std::int64_t last_transition_step = -1;
  };
  std::int64_t step = -1;
  std::vector<Entry> entries;

  HealthState worst() const;
  const Entry* find(std::string_view name) const;
};

/// Raw per-step signals a driver feeds the monitor. NaN means "not
/// measured this step" — that watchdog is simply skipped, so serial runs
/// (no imbalance), pair potentials (no extrapolation) and non-sample steps
/// all share one code path.
struct StepSignals {
  std::int64_t step = 0;
  double n_atoms = 0.0;           ///< normalizes the extrapolation rate
  double total_energy = std::numeric_limits<double>::quiet_NaN();
  double temperature = std::numeric_limits<double>::quiet_NaN();
  double max_force = std::numeric_limits<double>::quiet_NaN();
  /// Longest neighbor list / slot reservation (N_m); >= 1 means overflow.
  double neighbor_occupancy = std::numeric_limits<double>::quiet_NaN();
  /// max/mean per-rank step seconds; 1.0 is perfect balance.
  double step_imbalance = std::numeric_limits<double>::quiet_NaN();
  /// Cumulative embedding-table extrapolation count (monitor differences it).
  double extrapolations = std::numeric_limits<double>::quiet_NaN();
};

/// Thresholds for the standard watchdog set (docs/OBSERVABILITY.md carries
/// the full catalog: signal, units, suggested action).
struct HealthConfig {
  int drift_window = 16;          ///< samples forming the energy baseline
  double drift_warn = 1e-3;       ///< |E - baseline| / |baseline| (NVE)
  double drift_fatal = 1e-1;
  double target_temperature = 330.0;  ///< K; watchdog observes T / target
  double temp_warn_factor = 2.0;
  double temp_fatal_factor = 4.0;
  double force_warn = 1e2;        ///< max |F_i| [eV/A]
  double force_fatal = 1e4;
  double occupancy_warn = 0.85;   ///< longest list / reservation
  double occupancy_fatal = 1.0;
  double imbalance_warn = 1.5;    ///< max/mean per-rank step seconds
  double imbalance_fatal = 4.0;
  double extrapolation_warn = 1e-4;   ///< extrapolations / atom / step
  double extrapolation_fatal = 1e-2;
  int raise_after = 1;
  int clear_after = 3;
};

class HealthMonitor {
 public:
  /// Empty monitor; add() your own watchdogs.
  HealthMonitor() = default;
  /// Standard watchdog set. `sink` receives a "health" event per state
  /// transition (nullptr = no emission; distributed ranks other than 0 use
  /// this so the JSONL stream carries each transition once).
  explicit HealthMonitor(const HealthConfig& cfg, MetricsRegistry* sink);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// References stay valid for the life of the monitor.
  Watchdog& add(WatchdogSpec spec);
  Watchdog* find(std::string_view name);
  const Watchdog* find(std::string_view name) const;

  /// Feeds one named watchdog; emits a "health" event on transition.
  /// Unknown names are ignored (returns kOk).
  HealthState observe(std::string_view name, std::int64_t step, double value);

  /// Maps one step's raw signals onto the standard watchdog set (drift
  /// baseline and extrapolation differencing live here). Returns worst().
  HealthState observe_step(const StepSignals& s);

  HealthState worst() const;
  /// Two bits per watchdog in registration order — the flight recorder's
  /// per-step health word.
  std::uint32_t state_bits() const;
  HealthReport report() const;
  /// `health.<name>` value/state gauges plus `health.worst_state`.
  void publish_gauges(MetricsRegistry& reg) const;

  std::size_t size() const { return dogs_.size(); }

  static int encode(HealthState s) { return static_cast<int>(s); }
  static HealthState decode(int v);

  /// Relative-drift helper exposed for tests: |e - baseline| / |baseline|
  /// against the windowed baseline (mean of the first `drift_window`
  /// samples; before the window fills, the running mean of prior samples).
  double drift_value(double total_energy);

 private:
  std::vector<std::unique_ptr<Watchdog>> dogs_;
  MetricsRegistry* sink_ = nullptr;
  HealthConfig cfg_;
  bool standard_ = false;
  std::int64_t last_step_ = -1;
  // Energy-drift baseline (windowed mean).
  int baseline_n_ = 0;
  double baseline_sum_ = 0.0;
  // Extrapolation-rate differencing.
  double extrap_last_ = std::numeric_limits<double>::quiet_NaN();
  std::int64_t extrap_last_step_ = 0;
};

}  // namespace dp::obs
