#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <ostream>
#include <set>
#include <vector>

#include "common/thread_annotations.hpp"
#include "obs/json.hpp"

namespace dp::obs {

namespace {

using clock_type = std::chrono::steady_clock;

clock_type::time_point trace_epoch() {
  static const clock_type::time_point epoch = clock_type::now();
  return epoch;
}

/// One thread's event buffer. Owned jointly by the thread (thread_local
/// shared_ptr) and the global registry, so events from exited threads
/// survive until flush. The per-buffer mutex is only ever contended during
/// a flush/clear; appends take it uncontended.
struct ThreadBuffer {
  Mutex mu;
  std::vector<TraceEvent> events DP_GUARDED_BY(mu);
  int tid = 0;  // immutable after registration
};

struct BufferRegistry {
  Mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers DP_GUARDED_BY(mu);
  int next_tid DP_GUARDED_BY(mu) = 1;
};

BufferRegistry& registry() {
  static BufferRegistry* reg = new BufferRegistry;  // never destroyed: threads
  return *reg;                                      // may outlive static dtors
}

thread_local int t_rank = 0;

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    auto& reg = registry();
    MutexLock lock(reg.mu);
    b->tid = reg.next_tid++;
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(clock_type::now() - trace_epoch())
      .count();
}

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  trace_epoch();  // pin the epoch no later than first collector use
  return collector;
}

void TraceCollector::set_thread_rank(int rank) { t_rank = rank; }

int TraceCollector::thread_rank() { return t_rank; }

void TraceCollector::record_complete(std::string name, const char* cat, double ts_us,
                                     double dur_us) {
  ThreadBuffer& buf = local_buffer();
  MutexLock lock(buf.mu);
  buf.events.push_back({std::move(name), cat, 'X', ts_us, dur_us, t_rank, buf.tid});
}

void TraceCollector::record_instant(std::string name, const char* cat) {
  ThreadBuffer& buf = local_buffer();
  MutexLock lock(buf.mu);
  buf.events.push_back({std::move(name), cat, 'i', trace_now_us(), 0.0, t_rank, buf.tid});
}

std::size_t TraceCollector::event_count() const {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  std::size_t n = 0;
  for (const auto& buf : reg.buffers) {
    MutexLock buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void TraceCollector::clear() {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  for (const auto& buf : reg.buffers) {
    MutexLock buf_lock(buf->mu);
    buf->events.clear();
  }
}

void TraceCollector::write_chrome_trace(std::ostream& os) const {
  // Snapshot every buffer, then emit sorted by start time so the file is
  // stable across runs with identical timings.
  std::vector<TraceEvent> events;
  {
    auto& reg = registry();
    MutexLock lock(reg.mu);
    for (const auto& buf : reg.buffers) {
      MutexLock buf_lock(buf->mu);
      events.insert(events.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Process metadata: name each pid after its rank so Perfetto group labels
  // read "rank 0", "rank 1", ...
  std::set<int> ranks;
  for (const auto& e : events) ranks.insert(e.rank);
  for (int rank : ranks) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << rank
       << ",\"tid\":0,\"args\":{\"name\":\"rank " << rank << "\"}}";
  }
  for (const auto& e : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    json_string(os, e.name);
    os << ",\"cat\":";
    json_string(os, e.cat);
    os << ",\"ph\":\"" << e.ph << "\",\"ts\":";
    json_number(os, e.ts_us);
    if (e.ph == 'X') {
      os << ",\"dur\":";
      json_number(os, e.dur_us);
    }
    os << ",\"pid\":" << e.rank << ",\"tid\":" << e.tid << "}";
  }
  os << "]}\n";
}

bool TraceCollector::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return static_cast<bool>(os);
}

}  // namespace dp::obs
