#include "obs/metrics.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>

#include "obs/json.hpp"

namespace dp::obs {

// ---------------------------------------------------------------------------
// Histogram

std::vector<double> Histogram::default_time_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 100.0; decade *= 10.0)
    for (double step : {1.0, 2.0, 5.0}) bounds.push_back(decade * step);
  bounds.push_back(100.0);
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_time_bounds();
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  min_.store(std::numeric_limits<double>::infinity());
  max_.store(-std::numeric_limits<double>::infinity());
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
  cur = min_.load(std::memory_order_relaxed);
  while (x < cur && !min_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (x > cur && !max_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.bucket_counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    s.bucket_counts[i] = buckets_[i].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count ? min_.load(std::memory_order_relaxed) : 0.0;
  s.max = s.count ? max_.load(std::memory_order_relaxed) : 0.0;
  return s;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  count_.store(0);
  sum_.store(0.0);
  min_.store(std::numeric_limits<double>::infinity());
  max_.store(-std::numeric_limits<double>::infinity());
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const double c = static_cast<double>(bucket_counts[i]);
    if (c == 0.0) continue;
    if (cum + c >= target) {
      // Bucket edges, tightened by the observed range so estimates never
      // leave [min, max] (important for the open-ended overflow bucket).
      double lo = (i == 0) ? min : bounds[i - 1];
      double hi = (i < bounds.size()) ? bounds[i] : max;
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi < lo) hi = lo;
      const double frac = c > 0.0 ? (target - cum) / c : 0.0;
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  return max;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry reg;
  return reg;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::record_event(std::string name,
                                   std::vector<std::pair<std::string, double>> fields) {
  record_event(std::move(name), std::string(), std::move(fields));
}

void MetricsRegistry::record_event(std::string name, std::string label,
                                   std::vector<std::pair<std::string, double>> fields) {
  MutexLock lock(mu_);
  events_.push_back({std::move(name), std::move(label), std::move(fields)});
}

std::size_t MetricsRegistry::event_count() const {
  MutexLock lock(mu_);
  return events_.size();
}

void MetricsRegistry::clear() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  events_.clear();
}

namespace {

void write_counter(std::ostream& os, const std::string& name, const Counter& c) {
  os << "{\"type\":\"counter\",\"name\":";
  json_string(os, name);
  os << ",\"value\":" << c.value() << "}";
}

void write_gauge(std::ostream& os, const std::string& name, const Gauge& g) {
  os << "{\"type\":\"gauge\",\"name\":";
  json_string(os, name);
  os << ",\"value\":";
  json_number(os, g.value());
  os << "}";
}

void write_histogram(std::ostream& os, const std::string& name, const Histogram& h) {
  const HistogramSnapshot s = h.snapshot();
  os << "{\"type\":\"histogram\",\"name\":";
  json_string(os, name);
  os << ",\"count\":" << s.count << ",\"sum\":";
  json_number(os, s.sum);
  os << ",\"min\":";
  json_number(os, s.min);
  os << ",\"max\":";
  json_number(os, s.max);
  os << ",\"mean\":";
  json_number(os, s.mean());
  for (const auto& [key, q] : {std::pair{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}}) {
    os << ",\"" << key << "\":";
    json_number(os, s.quantile(q));
  }
  os << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
    if (s.bucket_counts[i] == 0) continue;  // sparse: most buckets are empty
    if (!first) os << ",";
    first = false;
    os << "{\"le\":";
    if (i < s.bounds.size())
      json_number(os, s.bounds[i]);
    else
      os << "\"+Inf\"";
    os << ",\"count\":" << s.bucket_counts[i] << "}";
  }
  os << "]}";
}

void write_event(std::ostream& os, const MetricEvent& e) {
  os << "{\"type\":\"event\",\"name\":";
  json_string(os, e.name);
  if (!e.label.empty()) {
    os << ",\"label\":";
    json_string(os, e.label);
  }
  os << ",\"fields\":{";
  bool first = true;
  for (const auto& [key, v] : e.fields) {
    if (!first) os << ",";
    first = false;
    json_string(os, key);
    os << ":";
    json_number(os, v);
  }
  os << "}}";
}

}  // namespace

void MetricsRegistry::write_metric_objects(std::ostream& os, const char* sep,
                                           bool& first) const {
  for (const auto& [name, c] : counters_) {
    if (!first) os << sep;
    first = false;
    write_counter(os, name, *c);
  }
  for (const auto& [name, g] : gauges_) {
    if (!first) os << sep;
    first = false;
    write_gauge(os, name, *g);
  }
  for (const auto& [name, h] : histograms_) {
    if (!first) os << sep;
    first = false;
    write_histogram(os, name, *h);
  }
}

void MetricsRegistry::write_event_objects(std::ostream& os, const char* sep,
                                          bool& first) const {
  for (const auto& e : events_) {
    if (!first) os << sep;
    first = false;
    write_event(os, e);
  }
}

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  MutexLock lock(mu_);
  bool first = true;
  write_metric_objects(os, "\n", first);
  write_event_objects(os, "\n", first);
  if (!first) os << "\n";
}

void MetricsRegistry::write_json(std::ostream& os) const {
  MutexLock lock(mu_);
  os << "{\"metrics\":[";
  bool first = true;
  write_metric_objects(os, ",", first);
  os << "],\"events\":[";
  first = true;
  write_event_objects(os, ",", first);
  os << "]}\n";
}

bool MetricsRegistry::write_jsonl_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_jsonl(os);
  return static_cast<bool>(os);
}

bool MetricsRegistry::write_jsonl_file_sync(const std::string& path) const {
  {
    std::ofstream os(path);
    if (!os) return false;
    write_jsonl(os);
    os.flush();
    if (!os) return false;
  }
  // The ofstream moved the data into the kernel; fsync pushes it to the
  // device so an immediately following abort/SIGKILL keeps the tail.
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return static_cast<bool>(os);
}

}  // namespace dp::obs
