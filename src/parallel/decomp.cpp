#include "parallel/decomp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dp::par {

Decomp::Decomp(const md::Box& box, std::array<int, 3> grid) : box_(box), grid_(grid) {
  DP_CHECK(grid[0] >= 1 && grid[1] >= 1 && grid[2] >= 1);
  const Vec3 L = box_.lengths();
  cell_ = {L.x / grid_[0], L.y / grid_[1], L.z / grid_[2]};
}

std::array<int, 3> Decomp::choose_grid(const md::Box& box, int nranks) {
  DP_CHECK(nranks >= 1);
  const Vec3 L = box.lengths();
  std::array<int, 3> best{1, 1, nranks};
  double best_score = -1.0;
  for (int nx = 1; nx <= nranks; ++nx) {
    if (nranks % nx != 0) continue;
    for (int ny = 1; ny * nx <= nranks; ++ny) {
      if ((nranks / nx) % ny != 0) continue;
      const int nz = nranks / (nx * ny);
      // Score = min/max sub-domain edge: 1.0 is a perfect cube.
      const double ex = L.x / nx, ey = L.y / ny, ez = L.z / nz;
      const double score = std::min({ex, ey, ez}) / std::max({ex, ey, ez});
      if (score > best_score) {
        best_score = score;
        best = {nx, ny, nz};
      }
    }
  }
  return best;
}

std::array<int, 3> Decomp::coords_of(int rank) const {
  DP_CHECK(rank >= 0 && rank < nranks());
  return {rank / (grid_[1] * grid_[2]), (rank / grid_[2]) % grid_[1], rank % grid_[2]};
}

int Decomp::rank_of(const std::array<int, 3>& c) const {
  return (c[0] * grid_[1] + c[1]) * grid_[2] + c[2];
}

int Decomp::coord_of(int dim, double x) const {
  const auto d = static_cast<std::size_t>(dim);
  const int n = grid_[d];
  if (cuts_[d].empty()) {
    // Uniform fast path — the seed arithmetic, bit-for-bit.
    return std::min(static_cast<int>(x / cell_[d]), n - 1);
  }
  const auto& cuts = cuts_[d];
  // First interior boundary strictly greater than x owns the next slab;
  // coordinates at or past the last boundary clamp into the last slab.
  const auto it = std::upper_bound(cuts.begin() + 1, cuts.end() - 1, x);
  return static_cast<int>(it - (cuts.begin() + 1));
}

int Decomp::owner_of(const Vec3& pos) const {
  const Vec3 p = box_.wrap(pos);
  std::array<int, 3> c;
  for (int d = 0; d < 3; ++d) {
    c[static_cast<std::size_t>(d)] = coord_of(d, p[static_cast<std::size_t>(d)]);
  }
  return rank_of(c);
}

double Decomp::cut(int dim, int i) const {
  const auto d = static_cast<std::size_t>(dim);
  if (cuts_[d].empty()) return i * cell_[d];
  return cuts_[d][static_cast<std::size_t>(i)];
}

void Decomp::set_cuts(int dim, const std::vector<double>& cuts) {
  const auto d = static_cast<std::size_t>(dim);
  const int n = grid_[d];
  DP_CHECK_MSG(static_cast<int>(cuts.size()) == n + 1,
               "set_cuts: need " << n + 1 << " planes, got " << cuts.size());
  const double L = box_.lengths()[d];
  DP_CHECK_MSG(cuts.front() == 0.0 && cuts.back() == L,
               "set_cuts: planes must span [0, " << L << "] exactly");
  for (std::size_t i = 1; i < cuts.size(); ++i)
    DP_CHECK_MSG(cuts[i] > cuts[i - 1], "set_cuts: planes must strictly increase");
  cuts_[d] = cuts;
}

Vec3 Decomp::lo(int rank) const {
  const auto c = coords_of(rank);
  return {cut(0, c[0]), cut(1, c[1]), cut(2, c[2])};
}

Vec3 Decomp::hi(int rank) const {
  const auto c = coords_of(rank);
  return {cut(0, c[0] + 1), cut(1, c[1] + 1), cut(2, c[2] + 1)};
}

int Decomp::neighbor(int rank, int dim, int dir) const {
  auto c = coords_of(rank);
  const int n = grid_[static_cast<std::size_t>(dim)];
  c[static_cast<std::size_t>(dim)] = ((c[static_cast<std::size_t>(dim)] + dir) % n + n) % n;
  return rank_of(c);
}

double Decomp::min_extent() const {
  double m = std::min({cell_.x, cell_.y, cell_.z});
  for (int d = 0; d < 3; ++d) {
    if (!has_cuts(d)) continue;
    for (int c = 0; c < grid_[static_cast<std::size_t>(d)]; ++c)
      m = std::min(m, width(d, c));
  }
  return m;
}

double Decomp::ghost_fraction(double halo_width) const {
  // Volume of the shell of width h around a cell, relative to the cell.
  const double vx = cell_.x, vy = cell_.y, vz = cell_.z;
  const double inner = vx * vy * vz;
  const double outer = (vx + 2 * halo_width) * (vy + 2 * halo_width) * (vz + 2 * halo_width);
  return (outer - inner) / inner;
}

}  // namespace dp::par
