// TCP socket transport: one connection per rank pair plus an IO thread.
//
// Bootstrap (rank-file/env protocol, see DESIGN.md "Transport"):
//   1. Rank 0 listens at the rendezvous address ("host:port"). Every other
//      rank opens its own ephemeral listener, dials rank 0 (with retry until
//      the timeout) and sends a hello {rank, own listen port}.
//   2. Rank 0 records each caller's address (getpeername) and port and sends
//      the full table back over the established connections.
//   3. Each rank r then dials every lower rank (rank 0 from the rendezvous
//      address, the rest from the table) and accepts one connection from
//      every higher rank — a deterministic full mesh with one socket per
//      pair. Handshake IO is blocking with poll timeouts; after the mesh is
//      up every socket goes O_NONBLOCK + TCP_NODELAY.
//
// Steady state: the posting (rank) thread writes frames inline while the
// socket accepts them; when the kernel buffer fills, the remainder is
// copied into a transport-owned per-peer backlog and the post returns a
// deferred ticket — this is the backend where send-completes-at-post stops
// holding (DESIGN.md discusses the Request-lifetime consequences; the
// payload is transport-owned, so discarding the Request early stays safe).
// A dedicated IO thread polls every socket: it drains incoming bytes,
// reassembles [u32 tag][u32 len][payload] frames and publishes them to the
// inbox; it flushes backlogs when sockets become writable; and it turns an
// EOF/error on a socket into that peer's dead flag so callers blocked on
// *that* peer fail with DP_CHECK (dumping the flight recorders) instead of
// hanging. Waits on other, still-live peers continue — a rank closing after
// finishing its protocol is normal shutdown, not a fault; real crashes
// still cascade because whoever fatals on the dead peer closes too.
//
// Happens-before arguments (each lock annotated below; also in
// docs/STATIC_ANALYSIS.md):
//   * inbox_mu_ guards the inbox and the dead-peer flag: the IO thread's
//     unlock after pushing a parsed frame happens-before the rank thread's
//     lock in recv()/try_recv(), publishing the payload bytes exactly like
//     the in-process mailbox hand-off.
//   * out_mu_ guards every peer's backlog and flushed-sequence counter:
//     the rank thread appends (or writes inline — only when the backlog is
//     empty, so frame order on the socket is append order), the IO thread
//     flushes, and ticket completion is observed under the same mutex.
//   * The two locks are never held together: the IO thread takes them
//     strictly sequentially, so there is no ordering to violate.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <thread>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "common/timer.hpp"
#include "parallel/transport.hpp"

namespace dp::par {

namespace {

constexpr std::size_t kFrameHeader = 2 * sizeof(std::uint32_t);
constexpr int kListenBacklog = 64;

struct PendingMessage {
  int src;
  int tag;
  std::vector<std::byte> payload;
};

/// One queued (possibly partially written) outgoing frame.
struct OutChunk {
  std::uint64_t seq = 0;  ///< per-peer send sequence; completion watermark
  std::size_t offset = 0;
  std::vector<std::byte> bytes;
};

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

sockaddr_in parse_rendezvous(const std::string& spec) {
  const auto colon = spec.rfind(':');
  DP_CHECK_MSG(colon != std::string::npos, "tcp rendezvous must be host:port, got '"
                                               << spec << "'");
  std::string host = spec.substr(0, colon);
  const int port = std::atoi(spec.c_str() + colon + 1);
  DP_CHECK_MSG(port > 0 && port < 65536, "bad rendezvous port in '" << spec << "'");
  if (host == "localhost" || host.empty()) host = "127.0.0.1";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  DP_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "tcp rendezvous host must be numeric IPv4 or localhost, got '"
                   << host << "'");
  return addr;
}

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(const TransportConfig& cfg)
      : me_(cfg.rank), nranks_(cfg.world), timeout_(cfg.timeout_seconds) {
    peers_.resize(static_cast<std::size_t>(nranks_));
    carry_.resize(static_cast<std::size_t>(nranks_));
    dead_in_.assign(static_cast<std::size_t>(nranks_), 0);
    bootstrap(cfg);
    DP_CHECK_MSG(::pipe(wake_pipe_) == 0, "pipe() failed: " << std::strerror(errno));
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);
    io_thread_ = std::thread([this] { io_loop(); });
  }

  ~TcpTransport() override {
    // Best-effort flush of deferred sends before tearing the mesh down: a
    // peer may still be waiting on bytes we accepted responsibility for.
    {
      MutexUniqueLock lock(out_mu_);
      WallTimer deadline;
      bool pending = true;
      while (pending && deadline.seconds() < timeout_) {
        pending = false;
        for (const auto& p : peers_) pending = pending || (!p.dead && !p.backlog.empty());
        if (pending) out_cv_.wait_for(lock, 0.05);
      }
    }
    stop_.store(true, std::memory_order_release);
    wake_io();
    if (io_thread_.joinable()) io_thread_.join();
    for (auto& p : peers_) close_fd(p.fd);
    close_fd(wake_pipe_[0]);
    close_fd(wake_pipe_[1]);
  }

  const char* name() const override { return "tcp"; }
  int size() const override { return nranks_; }

  SendTicket send(int src, int dest, int tag, const void* data,
                  std::size_t bytes) override {
    DP_CHECK_MSG(src == me_, "tcp transport serves rank " << me_ << " only");
    DP_CHECK_MSG(dest >= 0 && dest < nranks_, "send to invalid rank " << dest);
    n_messages_.fetch_add(1, std::memory_order_relaxed);
    n_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (dest == me_) {
      PendingMessage msg{src, tag, {}};
      msg.payload.resize(bytes);
      if (bytes != 0) std::memcpy(msg.payload.data(), data, bytes);
      {
        MutexLock lock(inbox_mu_);
        inbox_.push_back(std::move(msg));
        ++inbox_gen_;
      }
      inbox_cv_.notify_all();
      n_posts_immediate_.fetch_add(1, std::memory_order_relaxed);
      return kSendComplete;
    }

    std::uint32_t hdr[2] = {static_cast<std::uint32_t>(tag),
                            static_cast<std::uint32_t>(bytes)};
    DP_CHECK_MSG(bytes == hdr[1], "message too large for tcp framing");
    n_wire_bytes_.fetch_add(kFrameHeader + bytes, std::memory_order_relaxed);

    Peer& p = peers_[static_cast<std::size_t>(dest)];
    bool deferred = false;
    SendTicket ticket = kSendComplete;
    {
      MutexLock lock(out_mu_);
      DP_CHECK_MSG(!p.dead, "tcp transport: send to dead rank " << dest);
      // Inline fast path only when nothing is queued — otherwise this frame
      // would overtake the backlog on the wire.
      std::size_t written = 0;
      if (p.backlog.empty()) {
        written = write_some(p, hdr, sizeof(hdr));
        if (written == sizeof(hdr) && bytes != 0) {
          written += write_some(p, data, bytes);
        }
      }
      const std::size_t frame = kFrameHeader + bytes;
      if (written < frame) {
        OutChunk chunk;
        chunk.seq = ++p.posted_seq;
        chunk.bytes.resize(frame - written);
        // Stash the unwritten tail (possibly mid-header) in one buffer.
        std::size_t at = 0;
        for (std::size_t i = written; i < sizeof(hdr); ++i)
          chunk.bytes[at++] = reinterpret_cast<const std::byte*>(hdr)[i];
        const std::size_t payload_done = written > sizeof(hdr) ? written - sizeof(hdr) : 0;
        if (bytes > payload_done)
          std::memcpy(chunk.bytes.data() + at,
                      static_cast<const std::byte*>(data) + payload_done,
                      bytes - payload_done);
        p.backlog.push_back(std::move(chunk));
        ticket = make_ticket(dest, p.posted_seq);
        deferred = true;
      } else {
        ++p.posted_seq;
        p.flushed_seq = p.posted_seq;  // fully on the wire at post time
      }
    }
    if (deferred) {
      wake_io();  // IO thread must start watching POLLOUT for this peer
      n_posts_deferred_.fetch_add(1, std::memory_order_relaxed);
      return ticket;
    }
    n_posts_immediate_.fetch_add(1, std::memory_order_relaxed);
    return kSendComplete;
  }

  bool send_done(SendTicket t) override {
    if (t == kSendComplete) return true;
    const int dest = ticket_peer(t);
    const std::uint64_t seq = ticket_seq(t);
    MutexLock lock(out_mu_);
    const Peer& p = peers_[static_cast<std::size_t>(dest)];
    DP_CHECK_MSG(!p.dead, "tcp transport: peer rank " << dest << " died");
    return p.flushed_seq >= seq;
  }

  void send_wait(SendTicket t) override {
    if (t == kSendComplete) return;
    const int dest = ticket_peer(t);
    const std::uint64_t seq = ticket_seq(t);
    MutexUniqueLock lock(out_mu_);
    WallTimer idle;
    while (peers_[static_cast<std::size_t>(dest)].flushed_seq < seq) {
      DP_CHECK_MSG(!peers_[static_cast<std::size_t>(dest)].dead,
                   "tcp transport: peer rank " << dest << " died");
      DP_CHECK_MSG(idle.seconds() < timeout_,
                   "tcp transport timeout flushing send to rank " << dest);
      out_cv_.wait_for(lock, 0.1);
    }
  }

  std::vector<std::byte> recv(int me, int src, int tag) override {
    DP_CHECK_MSG(me == me_, "tcp transport serves rank " << me_ << " only");
    MutexUniqueLock lock(inbox_mu_);
    WallTimer idle;
    std::uint64_t seen_gen = inbox_gen_;
    for (;;) {
      for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          auto payload = std::move(it->payload);
          inbox_.erase(it);
          return payload;
        }
      }
      // Only the awaited source's death is fatal: a rank that finished its
      // protocol closes cleanly while others still talk, and that must not
      // kill them. A crash still cascades — whoever blocks on the dead rank
      // fatals and closes, which in turn kills anyone blocked on *them*.
      DP_CHECK_MSG(dead_in_[static_cast<std::size_t>(src)] == 0,
                   "tcp transport: rank " << me_ << " waiting on (src " << src
                                          << ", tag " << tag << ") but rank " << src
                                          << " closed its connection");
      DP_CHECK_MSG(idle.seconds() < timeout_,
                   "tcp transport timeout: rank " << me_ << " waited " << timeout_
                                                  << "s for (src " << src << ", tag "
                                                  << tag << ")");
      inbox_cv_.wait_for(lock, 0.1);
      if (inbox_gen_ != seen_gen) {
        seen_gen = inbox_gen_;
        idle.reset();  // traffic is flowing; only true silence times out
      }
    }
  }

  bool try_recv(int me, int src, int tag, std::vector<std::byte>& out) override {
    DP_CHECK_MSG(me == me_, "tcp transport serves rank " << me_ << " only");
    MutexLock lock(inbox_mu_);
    for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        out = std::move(it->payload);
        inbox_.erase(it);
        return true;
      }
    }
    return false;
  }

 private:
  struct Peer {
    int fd = -1;  ///< written during single-threaded bootstrap, then read-only
    std::deque<OutChunk> backlog DP_GUARDED_BY(out_mu_);
    std::uint64_t posted_seq DP_GUARDED_BY(out_mu_) = 0;
    std::uint64_t flushed_seq DP_GUARDED_BY(out_mu_) = 0;
    /// This peer's socket hit EOF or a hard error; sends to it fail fast.
    bool dead DP_GUARDED_BY(out_mu_) = false;
  };

  static SendTicket make_ticket(int peer, std::uint64_t seq) {
    return (static_cast<SendTicket>(static_cast<std::uint32_t>(peer)) << 32) |
           (seq & 0xffffffffULL);
  }
  static int ticket_peer(SendTicket t) { return static_cast<int>(t >> 32); }
  static std::uint64_t ticket_seq(SendTicket t) { return t & 0xffffffffULL; }

  static void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    DP_CHECK_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
  }

  static void set_nodelay(int fd) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  /// Nonblocking write loop; returns bytes written (may be short on a full
  /// socket buffer). Any hard error marks that peer's connection dead.
  std::size_t write_some(Peer& peer, const void* data, std::size_t bytes)
      DP_REQUIRES(out_mu_) {
    std::size_t written = 0;
    const auto* p = static_cast<const std::byte*>(data);
    while (written < bytes) {
      const ssize_t n = ::send(peer.fd, p + written, bytes - written, MSG_NOSIGNAL);
      if (n > 0) {
        written += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      peer.dead = true;  // ECONNRESET / EPIPE: the peer is gone
      break;
    }
    return written;
  }

  // ---- bootstrap ----------------------------------------------------------

  void deadline_check(const WallTimer& t, const char* what) const {
    DP_CHECK_MSG(t.seconds() < timeout_,
                 "tcp bootstrap timeout (" << what << ") on rank " << me_);
  }

  int create_listener(std::uint16_t port, std::uint16_t* bound_port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    DP_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    DP_CHECK_MSG(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                 "bind(port " << port << ") failed: " << std::strerror(errno));
    DP_CHECK_MSG(::listen(fd, kListenBacklog) == 0,
                 "listen() failed: " << std::strerror(errno));
    if (bound_port != nullptr) {
      sockaddr_in got{};
      socklen_t len = sizeof(got);
      DP_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&got), &len) == 0);
      *bound_port = ntohs(got.sin_port);
    }
    return fd;
  }

  int accept_with_timeout(int listener, const WallTimer& deadline) {
    for (;;) {
      pollfd pfd{listener, POLLIN, 0};
      const int r = ::poll(&pfd, 1, 100);
      if (r > 0) {
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd >= 0) return fd;
        if (errno == EINTR || errno == EAGAIN) continue;
        DP_CHECK_MSG(false, "accept() failed: " << std::strerror(errno));
      }
      deadline_check(deadline, "accept");
    }
  }

  int connect_with_retry(const sockaddr_in& addr, const WallTimer& deadline) {
    for (;;) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      DP_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0)
        return fd;
      ::close(fd);
      deadline_check(deadline, "connect");
      // The peer's listener may simply not exist yet — retry until it does.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  void read_exact(int fd, void* data, std::size_t bytes, const WallTimer& deadline) {
    auto* p = static_cast<std::byte*>(data);
    std::size_t got = 0;
    while (got < bytes) {
      pollfd pfd{fd, POLLIN, 0};
      const int r = ::poll(&pfd, 1, 100);
      if (r <= 0) {
        deadline_check(deadline, "handshake read");
        continue;
      }
      const ssize_t n = ::recv(fd, p + got, bytes - got, 0);
      DP_CHECK_MSG(n > 0, "tcp handshake: peer closed early");
      got += static_cast<std::size_t>(n);
    }
  }

  void write_exact(int fd, const void* data, std::size_t bytes) {
    const auto* p = static_cast<const std::byte*>(data);
    std::size_t put = 0;
    while (put < bytes) {
      const ssize_t n = ::send(fd, p + put, bytes - put, MSG_NOSIGNAL);
      DP_CHECK_MSG(n > 0 || errno == EINTR,
                   "tcp handshake write failed: " << std::strerror(errno));
      if (n > 0) put += static_cast<std::size_t>(n);
    }
  }

  void bootstrap(const TransportConfig& cfg) {
    DP_CHECK_MSG(!cfg.rendezvous.empty(), "tcp transport needs a rendezvous host:port");
    const sockaddr_in rendezvous = parse_rendezvous(cfg.rendezvous);
    WallTimer deadline;

    // Table entry per rank > 0: {IPv4 address, listen port}, network order.
    std::vector<std::uint32_t> table(2 * static_cast<std::size_t>(nranks_ - 1), 0);

    if (me_ == 0) {
      const int listener = create_listener(ntohs(rendezvous.sin_port), nullptr);
      for (int k = 1; k < nranks_; ++k) {
        const int fd = accept_with_timeout(listener, deadline);
        std::uint32_t hello[2];
        read_exact(fd, hello, sizeof(hello), deadline);
        const int rank = static_cast<int>(hello[0]);
        DP_CHECK_MSG(rank > 0 && rank < nranks_ && peers_[static_cast<std::size_t>(rank)].fd < 0,
                     "tcp bootstrap: bad hello rank " << rank);
        peers_[static_cast<std::size_t>(rank)].fd = fd;
        sockaddr_in peer_addr{};
        socklen_t len = sizeof(peer_addr);
        DP_CHECK(::getpeername(fd, reinterpret_cast<sockaddr*>(&peer_addr), &len) == 0);
        table[2 * static_cast<std::size_t>(rank - 1)] = peer_addr.sin_addr.s_addr;
        table[2 * static_cast<std::size_t>(rank - 1) + 1] = hello[1];
      }
      int lfd = listener;
      close_fd(lfd);
      for (int r = 1; r < nranks_; ++r)
        write_exact(peers_[static_cast<std::size_t>(r)].fd, table.data(),
                    table.size() * sizeof(std::uint32_t));
    } else {
      std::uint16_t my_port = 0;
      const int listener = create_listener(0, &my_port);
      const int fd0 = connect_with_retry(rendezvous, deadline);
      std::uint32_t hello[2] = {static_cast<std::uint32_t>(me_), my_port};
      write_exact(fd0, hello, sizeof(hello));
      peers_[0].fd = fd0;
      read_exact(fd0, table.data(), table.size() * sizeof(std::uint32_t), deadline);
      // Dial every lower rank...
      for (int r = 1; r < me_; ++r) {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = table[2 * static_cast<std::size_t>(r - 1)];
        addr.sin_port = htons(static_cast<std::uint16_t>(
            table[2 * static_cast<std::size_t>(r - 1) + 1]));
        const int fd = connect_with_retry(addr, deadline);
        const std::uint32_t id = static_cast<std::uint32_t>(me_);
        write_exact(fd, &id, sizeof(id));
        peers_[static_cast<std::size_t>(r)].fd = fd;
      }
      // ...and accept one connection from every higher rank.
      for (int k = me_ + 1; k < nranks_; ++k) {
        const int fd = accept_with_timeout(listener, deadline);
        std::uint32_t id = 0;
        read_exact(fd, &id, sizeof(id), deadline);
        const int rank = static_cast<int>(id);
        DP_CHECK_MSG(rank > me_ && rank < nranks_ &&
                         peers_[static_cast<std::size_t>(rank)].fd < 0,
                     "tcp bootstrap: bad mesh hello rank " << rank);
        peers_[static_cast<std::size_t>(rank)].fd = fd;
      }
      int lfd = listener;
      close_fd(lfd);
    }

    for (int r = 0; r < nranks_; ++r) {
      if (r == me_) continue;
      Peer& p = peers_[static_cast<std::size_t>(r)];
      DP_CHECK_MSG(p.fd >= 0, "tcp bootstrap left rank " << r << " unconnected");
      set_nonblocking(p.fd);
      set_nodelay(p.fd);
    }
  }

  // ---- IO thread ----------------------------------------------------------

  void wake_io() {
    const char b = 1;
    // A full pipe already guarantees a pending wakeup; ignore EAGAIN.
    (void)!::write(wake_pipe_[1], &b, 1);
  }

  void mark_dead(int rank) {
    {
      MutexLock lock(inbox_mu_);
      dead_in_[static_cast<std::size_t>(rank)] = 1;
    }
    inbox_cv_.notify_all();
    {
      MutexLock lock(out_mu_);
      peers_[static_cast<std::size_t>(rank)].dead = true;
    }
    out_cv_.notify_all();
  }

  /// Parses complete frames out of carry_[src] into the inbox.
  void lift_frames(int src) {
    auto& carry = carry_[static_cast<std::size_t>(src)];
    std::size_t cursor = 0;
    bool delivered = false;
    while (carry.size() - cursor >= kFrameHeader) {
      std::uint32_t hdr[2];
      std::memcpy(hdr, carry.data() + cursor, sizeof(hdr));
      const std::size_t len = hdr[1];
      if (carry.size() - cursor < kFrameHeader + len) break;
      PendingMessage msg{src, static_cast<int>(hdr[0]), {}};
      msg.payload.resize(len);
      if (len != 0)
        std::memcpy(msg.payload.data(), carry.data() + cursor + kFrameHeader, len);
      {
        MutexLock lock(inbox_mu_);
        inbox_.push_back(std::move(msg));
        ++inbox_gen_;
      }
      delivered = true;
      cursor += kFrameHeader + len;
    }
    if (cursor != 0)
      carry.erase(carry.begin(), carry.begin() + static_cast<std::ptrdiff_t>(cursor));
    if (delivered) inbox_cv_.notify_all();
  }

  void io_loop() {
    std::vector<pollfd> fds;
    std::vector<int> fd_rank;
    std::vector<std::byte> buf(64 * 1024);
    while (!stop_.load(std::memory_order_acquire)) {
      fds.clear();
      fd_rank.clear();
      fds.push_back({wake_pipe_[0], POLLIN, 0});
      fd_rank.push_back(-1);
      {
        MutexLock lock(out_mu_);
        for (int r = 0; r < nranks_; ++r) {
          const Peer& p = peers_[static_cast<std::size_t>(r)];
          if (p.fd < 0 || p.dead) continue;  // dead sockets would spin POLLHUP
          short events = POLLIN;
          if (!p.backlog.empty()) events |= POLLOUT;
          fds.push_back({p.fd, events, 0});
          fd_rank.push_back(r);
        }
      }
      const int r = ::poll(fds.data(), fds.size(), 200);
      if (r < 0 && errno != EINTR) break;
      if (r <= 0) continue;

      if ((fds[0].revents & POLLIN) != 0) {
        char sink[64];
        while (::read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
        }
      }

      for (std::size_t i = 1; i < fds.size(); ++i) {
        const int rank = fd_rank[i];
        const int fd = fds[i].fd;
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          for (;;) {
            const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
            if (n > 0) {
              auto& carry = carry_[static_cast<std::size_t>(rank)];
              carry.insert(carry.end(), buf.data(), buf.data() + n);
              if (static_cast<std::size_t>(n) < buf.size()) {
                lift_frames(rank);
                break;
              }
              lift_frames(rank);
              continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            if (n < 0 && errno == EINTR) continue;
            // EOF or hard error: this peer is gone. Keep serving the others
            // — a rank that finished its protocol closes while the rest of
            // the world is still exchanging (normal shutdown order).
            mark_dead(rank);
            break;
          }
        }
        if ((fds[i].revents & POLLOUT) != 0) {
          bool progressed = false;
          {
            MutexLock lock(out_mu_);
            Peer& p = peers_[static_cast<std::size_t>(rank)];
            while (!p.backlog.empty()) {
              OutChunk& chunk = p.backlog.front();
              chunk.offset += write_some(p, chunk.bytes.data() + chunk.offset,
                                         chunk.bytes.size() - chunk.offset);
              if (p.dead) break;
              if (chunk.offset < chunk.bytes.size()) break;  // socket full again
              p.flushed_seq = chunk.seq;
              p.backlog.pop_front();
              progressed = true;
            }
          }
          if (progressed) out_cv_.notify_all();
        }
      }
    }
  }

  int me_;
  int nranks_;
  double timeout_;

  std::vector<Peer> peers_;
  int wake_pipe_[2] = {-1, -1};

  /// Inbox: parsed incoming messages + the liveness verdict. IO thread
  /// publishes under the lock; rank thread consumes under the lock (the
  /// same hand-off shape as the in-process mailbox — see file comment).
  Mutex inbox_mu_;
  CondVar inbox_cv_;
  std::deque<PendingMessage> inbox_ DP_GUARDED_BY(inbox_mu_);
  std::uint64_t inbox_gen_ DP_GUARDED_BY(inbox_mu_) = 0;
  /// Per-peer liveness as seen by receivers (1 = that rank's socket closed).
  /// Per-peer rather than a single flag so a rank that finishes its protocol
  /// and disconnects cleanly does not kill waits on still-live peers.
  std::vector<std::uint8_t> dead_in_ DP_GUARDED_BY(inbox_mu_);

  /// Outbound: per-peer backlog + completion watermarks (see file comment).
  Mutex out_mu_;
  CondVar out_cv_;

  /// Reassembly buffers, IO-thread-owned (single consumer per socket).
  std::vector<std::vector<std::byte>> carry_;

  std::atomic<bool> stop_{false};
  std::thread io_thread_;
};

}  // namespace

std::unique_ptr<Transport> make_tcp_transport(const TransportConfig& cfg) {
  return std::make_unique<TcpTransport>(cfg);
}

int pick_free_tcp_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DP_CHECK_MSG(fd >= 0, "pick_free_tcp_port: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel assigns an ephemeral port
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    DP_CHECK_MSG(false, "pick_free_tcp_port: bind() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    DP_CHECK_MSG(false, "pick_free_tcp_port: getsockname() failed");
  }
  const int port = static_cast<int>(ntohs(addr.sin_port));
  ::close(fd);
  return port;
}

}  // namespace dp::par
