#include "parallel/distributed_md.hpp"

#include <algorithm>
#include <mutex>

#include "common/timer.hpp"
#include "md/integrator.hpp"
#include "parallel/minimpi.hpp"
#include "md/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dp::par {

DistributedRunResult run_distributed_md(int nranks, const md::Configuration& global,
                                        const ForceFieldFactory& factory,
                                        const md::SimulationConfig& sim,
                                        const DistributedOptions& opts) {
  DistributedRunResult result;
  md::Configuration init = global;
  init.atoms.validate();
  if (opts.init_velocities) md::init_velocities(init.atoms, sim.temperature, sim.seed);

  std::array<int, 3> grid = opts.grid;
  if (grid[0] == 0) grid = Decomp::choose_grid(init.box, nranks);
  const Decomp decomp(init.box, grid);
  DP_CHECK_MSG(decomp.nranks() == nranks, "grid does not match rank count");

  const std::size_t n_global = init.atoms.size();
  const double global_volume = init.box.volume();

  std::mutex result_mu;
  struct Gathered {
    std::vector<std::int64_t> ids;
    std::vector<Vec3> pos, vel, force;
  } gathered;
  if (opts.gather_state) {
    gathered.pos.resize(n_global);
    gathered.vel.resize(n_global);
    gathered.force.resize(n_global);
  }

  WallTimer wall;
  result.comm = run_parallel(nranks, [&](Communicator& comm) {
    const int rank = comm.rank();
    // Rank threads map to trace "processes": one swim-lane group per rank.
    obs::TraceCollector::set_thread_rank(rank);
    auto ff = factory();
    const double halo = ff->cutoff() + sim.skin;

    // Take ownership of this rank's atoms (ids track the global index).
    md::Atoms atoms;
    atoms.mass_by_type = init.atoms.mass_by_type;
    std::vector<std::int64_t> ids;
    for (std::size_t a = 0; a < n_global; ++a) {
      if (decomp.owner_of(init.atoms.pos[a]) != rank) continue;
      atoms.add(init.box.wrap(init.atoms.pos[a]), init.atoms.type[a]);
      atoms.vel.back() = init.atoms.vel[a];
      ids.push_back(static_cast<std::int64_t>(a));
    }

    HaloExchange halo_ex(init.box, decomp, rank, halo);
    md::NeighborList nlist(ff->cutoff(), sim.skin);
    std::size_t n_local = atoms.size();
    std::size_t max_local = 0, max_ghost = 0;

    auto rebuild = [&] {
      atoms.resize(n_local);  // drop ghosts
      {
        // Migration + ghost exchange are communication, not list building:
        // keep them under md.halo so the per-phase breakdown separates
        // compute from exchange (halo.* subsections nest inside).
        ScopedTimer t("md.halo", "halo");
        migrate(comm, init.box, decomp, rank, atoms, &ids);
        n_local = atoms.size();
        halo_ex.exchange_ghosts(comm, atoms);
      }
      {
        ScopedTimer t("md.neighbor", "md");
        nlist.build(init.box, atoms.pos, n_local, /*periodic=*/false);
      }
      max_local = std::max(max_local, n_local);
      max_ghost = std::max(max_ghost, halo_ex.n_ghost());
    };

    md::ForceResult local_force;
    auto compute = [&] {
      {
        ScopedTimer t("md.force", "md");
        local_force = ff->compute(init.box, atoms, nlist, /*periodic=*/false);
      }
      ScopedTimer t("md.halo", "halo");
      halo_ex.reduce_forces(comm, atoms);
    };

    std::vector<md::ThermoSample> thermo;
    auto sample = [&](int step) {
      ScopedTimer timer("md.sample", "md");
      // Local contributions -> one fused allreduce.
      std::vector<double> contrib(12, 0.0);
      double ke = 0.0;
      for (std::size_t a = 0; a < n_local; ++a)
        ke += 0.5 * atoms.mass(a) * norm2(atoms.vel[a]);
      contrib[0] = ke * md::kMv2ToEv;
      contrib[1] = local_force.energy;
      contrib[2] = static_cast<double>(n_local);
      for (std::size_t k = 0; k < 9; ++k) contrib[3 + k] = local_force.virial.m[k];
      const auto total = comm.allreduce_sum(contrib);
      md::ThermoSample s;
      s.step = step;
      s.kinetic = total[0];
      s.potential = total[1];
      const double n_atoms = total[2];
      s.temperature = n_atoms > 1
                          ? 2.0 * s.kinetic / ((3.0 * n_atoms - 3.0) * md::kBoltzmann)
                          : 0.0;
      const double virial_trace = total[3] + total[7] + total[11];
      s.pressure_bar = (n_atoms * md::kBoltzmann * s.temperature + virial_trace / 3.0) /
                       global_volume * md::kEvPerA3ToBar;
      thermo.push_back(s);
    };

    rebuild();
    compute();
    sample(0);

    int since_rebuild = 0;
    obs::Counter& steps_counter = obs::MetricsRegistry::instance().counter("md.steps");
    obs::Counter& rebuilds_counter =
        obs::MetricsRegistry::instance().counter("md.neighbor_rebuilds");
    obs::Histogram& step_seconds =
        obs::MetricsRegistry::instance().histogram("md.step_seconds");
    for (int step = 1; step <= sim.steps; ++step) {
      obs::TraceSpan step_span("md.step", "md");
      WallTimer step_timer;
      {
        // Half-kick + drift on local atoms only (ghosts are re-derived).
        ScopedTimer t("md.integrate", "md");
        for (std::size_t a = 0; a < n_local; ++a) {
          const double sc = 0.5 * sim.dt * md::kForceToAccel / atoms.mass(a);
          atoms.vel[a] += atoms.force[a] * sc;
          atoms.pos[a] += atoms.vel[a] * sim.dt;
        }
      }
      ++since_rebuild;
      if (since_rebuild >= sim.rebuild_every) {
        rebuild();
        since_rebuild = 0;
        rebuilds_counter.inc();
      } else {
        ScopedTimer t("md.halo", "halo");
        halo_ex.update_ghost_positions(comm, atoms);
      }
      compute();
      {
        ScopedTimer t("md.integrate", "md");
        for (std::size_t a = 0; a < n_local; ++a) {
          const double sc = 0.5 * sim.dt * md::kForceToAccel / atoms.mass(a);
          atoms.vel[a] += atoms.force[a] * sc;
        }
      }
      if (step % sim.thermo_every == 0 || step == sim.steps) sample(step);
      if (rank == 0) steps_counter.inc();
      step_seconds.observe(step_timer.seconds());
    }

    const double max_local_global = comm.allreduce_max(static_cast<double>(max_local));
    const double max_ghost_global = comm.allreduce_max(static_cast<double>(max_ghost));
    const double mean_local = static_cast<double>(n_global) / nranks;

    // Per-rank communication accounting, aggregated over minimpi reductions
    // so rank 0 can publish fleet-level gauges (mean/max expose imbalance).
    const double rank_bytes = static_cast<double>(halo_ex.bytes_sent());
    const double rank_wait = halo_ex.wait_seconds();
    const auto comm_sums = comm.allreduce_sum(std::vector<double>{rank_bytes, rank_wait});
    const double bytes_max = comm.allreduce_max(rank_bytes);
    const double wait_max = comm.allreduce_max(rank_wait);
    if (rank == 0) {
      auto& reg = obs::MetricsRegistry::instance();
      reg.gauge("halo.bytes_per_rank_mean").set(comm_sums[0] / nranks);
      reg.gauge("halo.bytes_per_rank_max").set(bytes_max);
      reg.gauge("halo.wait_seconds_mean").set(comm_sums[1] / nranks);
      reg.gauge("halo.wait_seconds_max").set(wait_max);
      reg.gauge("md.load_imbalance")
          .set(mean_local > 0 ? max_local_global / mean_local : 1.0);
    }

    std::lock_guard lock(result_mu);
    obs::MetricsRegistry::instance().record_event(
        "rank", {{"rank", static_cast<double>(rank)},
                 {"halo_bytes", rank_bytes},
                 {"halo_messages", static_cast<double>(halo_ex.messages_sent())},
                 {"halo_wait_seconds", rank_wait},
                 {"local_atoms", static_cast<double>(n_local)},
                 {"ghost_atoms", static_cast<double>(halo_ex.n_ghost())}});
    if (rank == 0) {
      result.thermo = thermo;
      result.max_local_atoms = static_cast<std::size_t>(max_local_global);
      result.max_ghost_atoms = static_cast<std::size_t>(max_ghost_global);
      result.load_imbalance = mean_local > 0 ? max_local_global / mean_local : 1.0;
    }
    if (opts.gather_state) {
      for (std::size_t a = 0; a < n_local; ++a) {
        const auto id = static_cast<std::size_t>(ids[a]);
        gathered.pos[id] = atoms.pos[a];
        gathered.vel[id] = atoms.vel[a];
        gathered.force[id] = atoms.force[a];
      }
    }
  });
  result.wall_seconds = wall.seconds();
  if (opts.gather_state) {
    result.final_pos = std::move(gathered.pos);
    result.final_vel = std::move(gathered.vel);
    result.final_force = std::move(gathered.force);
  }
  return result;
}

}  // namespace dp::par
