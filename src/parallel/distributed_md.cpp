#include "parallel/distributed_md.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/thread_annotations.hpp"
#include "common/timer.hpp"
#include "dp/env_mat.hpp"
#include "md/integrator.hpp"
#include "parallel/minimpi.hpp"
#include "md/units.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dp::par {

namespace {

/// Tag base for the end-of-run state gather to rank 0. Stays below the
/// transport layer's reserved collective space (Transport::kCollectiveTag)
/// and above every per-step tag family (halo 0-5/200+/400+, migrate 600+,
/// broadcast/gatherv 1<<20).
constexpr int kGatherTagBase = 1 << 22;

/// Step-time EWMA smoothing factor: ~the last three rebalance windows carry
/// the weight, so one slow step (page fault, noisy neighbor) cannot yank a
/// boundary.
constexpr double kEwmaAlpha = 0.3;

/// Per-boundary shift clamp, as a fraction of the smaller adjacent slab:
/// < 0.5 guarantees slabs never invert in one update and atoms near a moved
/// boundary still travel at most one slab per migration.
constexpr double kMaxShiftFraction = 0.45;

/// Minimum slab width as a multiple of the halo width: the margin above 1.0
/// keeps HaloExchange's halo <= min_extent() invariant satisfied with room
/// for floating-point drift in the cut arithmetic.
constexpr double kMinWidthFactor = 1.05;

/// Clamps interior cut planes so every slab is at least `minw` wide, keeping
/// cuts.front()/back() fixed. Two passes: forward raises each plane to
/// minw past its predecessor, backward lowers it to minw before its (already
/// final) successor — feasible whenever n*minw <= L, which callers check.
void clamp_min_widths(std::vector<double>& cuts, double minw) {
  for (std::size_t i = 1; i + 1 < cuts.size(); ++i)
    cuts[i] = std::max(cuts[i], cuts[i - 1] + minw);
  for (std::size_t i = cuts.size() - 2; i >= 1; --i)
    cuts[i] = std::min(cuts[i], cuts[i + 1] - minw);
}

/// Initial atom-count-equalizing cut planes along `axis`: boundary i sits at
/// the midpoint of the coordinate pair straddling the i-th n-quantile of the
/// (wrapped) atom positions. Deterministic in the input configuration, so
/// every rank computes the identical planes without communicating.
std::vector<double> count_equalizing_cuts(const md::Box& box, const md::Atoms& atoms,
                                          int axis, int n, double minw) {
  std::vector<double> xs;
  xs.reserve(atoms.size());
  for (const Vec3& p : atoms.pos) xs.push_back(box.wrap(p)[static_cast<std::size_t>(axis)]);
  std::sort(xs.begin(), xs.end());
  const double L = box.lengths()[static_cast<std::size_t>(axis)];
  std::vector<double> cuts(static_cast<std::size_t>(n) + 1);
  cuts.front() = 0.0;
  cuts.back() = L;
  for (int i = 1; i < n; ++i) {
    const std::size_t q = std::clamp<std::size_t>(
        static_cast<std::size_t>(i) * xs.size() / static_cast<std::size_t>(n), 1,
        xs.size() - 1);
    cuts[static_cast<std::size_t>(i)] = 0.5 * (xs[q - 1] + xs[q]);
  }
  clamp_min_widths(cuts, minw);
  return cuts;
}

}  // namespace

DistributedRunResult run_distributed_md_rank(Communicator& comm,
                                             const md::Configuration& global,
                                             const ForceFieldFactory& factory,
                                             const md::SimulationConfig& sim,
                                             const DistributedOptions& opts) {
  const int nranks = comm.size();
  const int rank = comm.rank();
  DistributedRunResult result;

  // Every rank derives the identical initial state: validate + velocity
  // init are deterministic in sim.seed, so one-rank-per-process worlds need
  // no broadcast of the configuration.
  md::Configuration init = global;
  init.atoms.validate();
  if (opts.init_velocities) md::init_velocities(init.atoms, sim.temperature, sim.seed);

  std::array<int, 3> grid = opts.grid;
  if (grid[0] == 0) grid = Decomp::choose_grid(init.box, nranks);
  // Per-rank copy, mutable because the rebalancer installs new cut planes;
  // every rank applies the identical update (computed from allreduced
  // inputs), so the copies never diverge.
  Decomp decomp(init.box, grid);
  DP_CHECK_MSG(decomp.nranks() == nranks, "grid does not match rank count");

  const std::size_t n_global = init.atoms.size();
  const double global_volume = init.box.volume();

  if (opts.flight_recorder) obs::install_crash_handlers();

  WallTimer wall;
  // Rank threads map to trace "processes": one swim-lane group per rank.
  obs::TraceCollector::set_thread_rank(rank);
  auto ff = factory();
  const double halo = ff->cutoff() + sim.skin;

  // Rebalancing runs along the axis with the most ranks (boundary moves
  // there have the most leverage), provided there is a boundary to move and
  // room to keep every slab wider than the halo.
  int rb_axis = 0;
  for (int d = 1; d < 3; ++d)
    if (grid[static_cast<std::size_t>(d)] > grid[static_cast<std::size_t>(rb_axis)]) rb_axis = d;
  const int rb_n = grid[static_cast<std::size_t>(rb_axis)];
  const double rb_minw = kMinWidthFactor * halo;
  const double rb_len = init.box.lengths()[static_cast<std::size_t>(rb_axis)];
  const bool rebalance_active =
      opts.rebalance && rb_n > 1 && rb_len >= rb_n * rb_minw && n_global >= 2;
  if (rebalance_active) {
    // Start from atom-count-equalizing planes: the initial distribution is
    // the one imbalance source measurable before any step runs, and evening
    // it out means the running-max load_imbalance below starts near 1.0.
    decomp.set_cuts(rb_axis, count_equalizing_cuts(init.box, init.atoms, rb_axis,
                                                   rb_n, rb_minw));
  }

  // Per-rank black box + watchdogs. Only rank 0's monitor emits into the
  // JSONL sink (all ranks observe identical globally reduced signals, so
  // one stream carries each transition exactly once).
  std::optional<obs::FlightRecorder> flight;
  if (opts.flight_recorder) {
    flight.emplace(rank);
    flight->set_output_dir(opts.flight_dir.c_str());
    flight->register_for_crash_dump();
  }
  std::optional<obs::HealthMonitor> health;
  if (opts.health != nullptr) {
    health.emplace(*opts.health,
                   rank == 0 ? &obs::MetricsRegistry::instance() : nullptr);
  }
  int worst_seen = 0;
  // Per-step phase accounting feeding the flight record (comm covers
  // migration, ghost exchange and force reduction).
  double phase_comm = 0.0, phase_neighbor = 0.0, phase_force = 0.0;
  // Step seconds accumulated since the last sample — the imbalance probe
  // compares this window's max across ranks against its mean.
  double window_seconds = 0.0;

  // Take ownership of this rank's atoms (ids track the global index).
  md::Atoms atoms;
  atoms.mass_by_type = init.atoms.mass_by_type;
  std::vector<std::int64_t> ids;
  for (std::size_t a = 0; a < n_global; ++a) {
    if (decomp.owner_of(init.atoms.pos[a]) != rank) continue;
    atoms.add(init.box.wrap(init.atoms.pos[a]), init.atoms.type[a]);
    atoms.vel.back() = init.atoms.vel[a];
    ids.push_back(static_cast<std::int64_t>(a));
  }

  HaloExchange halo_ex(init.box, decomp, rank, halo);
  md::NeighborList nlist(ff->cutoff(), sim.skin);
  std::size_t n_local = atoms.size();
  std::size_t max_local = 0, max_ghost = 0;

  // Interior/boundary split for communication overlap: locals are kept
  // interior-first, where *interior* means farther than the halo width
  // (cutoff + skin) from every sub-domain face — such atoms cannot have a
  // ghost in their neighbor list until the next rebuild, so their forces
  // are computable before the ghost refresh completes. `interior_list` is
  // the CSR prefix over them; `boundary_list`/`boundary_map`/`batoms` are
  // the compacted sub-system for the rest (see NeighborList::compact).
  std::size_t n_interior = 0;
  md::NeighborList interior_list(ff->cutoff(), sim.skin);
  md::NeighborList boundary_list(ff->cutoff(), sim.skin);
  std::vector<int> boundary_map;
  md::Atoms batoms;

  auto partition_interior = [&] {
    const Vec3 lo = decomp.lo(rank);
    const Vec3 hi = decomp.hi(rank);
    std::vector<std::size_t> order;
    order.reserve(n_local);
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t a = 0; a < n_local; ++a) {
        const Vec3& p = atoms.pos[a];
        bool interior = true;
        for (std::size_t d = 0; d < 3; ++d)
          interior = interior && (p[d] - lo[d] > halo) && (hi[d] - p[d] > halo);
        if (interior == (pass == 0)) order.push_back(a);
      }
      if (pass == 0) n_interior = order.size();
    }
    md::Atoms reordered;
    reordered.mass_by_type = atoms.mass_by_type;
    std::vector<std::int64_t> reordered_ids;
    reordered_ids.reserve(n_local);
    for (std::size_t a : order) {
      reordered.add(atoms.pos[a], atoms.type[a]);
      reordered.vel.back() = atoms.vel[a];
      reordered.force.back() = atoms.force[a];
      reordered_ids.push_back(ids[a]);
    }
    atoms = std::move(reordered);
    ids = std::move(reordered_ids);
  };

  // --- measurement-driven slab rebalancing ------------------------------
  // The per-rank step-time EWMA is the load signal. Every rebalance_every
  // rebuilds, the EWMAs are allgathered (one-hot allreduce_sum: each slot
  // receives exactly one nonzero contribution, so the result is exact and
  // fold-order-independent) and every rank runs the identical boundary
  // update: slab widths take a damped step towards being proportional to
  // width/time (a slab twice as slow per unit width gets half the width),
  // with a hysteresis skip when the measured imbalance is already small, a
  // per-boundary shift clamp so slabs cannot invert or outrun the one-hop
  // migrate contract, and a width clamp preserving halo <= min_extent.
  double step_ewma = 0.0;
  bool ewma_seeded = false;
  int rebuilds_since_rebalance = 0;
  std::uint64_t boundary_shifts = 0;
  obs::Counter& shifts_counter =
      obs::MetricsRegistry::instance().counter("rebalance.boundary_shifts");

  auto maybe_rebalance = [&] {
    if (!rebalance_active) return;
    if (++rebuilds_since_rebalance < opts.rebalance_every) return;
    rebuilds_since_rebalance = 0;
    if (!ewma_seeded) return;
    std::vector<double> per_rank(static_cast<std::size_t>(nranks), 0.0);
    per_rank[static_cast<std::size_t>(rank)] = step_ewma;
    per_rank = comm.allreduce_sum(per_rank);

    // Mean EWMA per slab coordinate along the rebalance axis (all ranks in
    // a slab share its boundaries, so their times are pooled).
    const auto n = static_cast<std::size_t>(rb_n);
    std::vector<double> slab_time(n, 0.0);
    for (int r = 0; r < nranks; ++r)
      slab_time[static_cast<std::size_t>(decomp.coords_of(r)[static_cast<std::size_t>(
          rb_axis)])] += per_rank[static_cast<std::size_t>(r)];
    const double ranks_per_slab = static_cast<double>(nranks) / rb_n;
    double mean_time = 0.0, max_time = 0.0;
    for (double& t : slab_time) {
      t /= ranks_per_slab;
      mean_time += t / rb_n;
      max_time = std::max(max_time, t);
    }
    if (mean_time <= 0.0) return;
    if (max_time / mean_time - 1.0 < opts.rebalance_hysteresis) return;

    std::vector<double> old_cuts(n + 1), old_width(n);
    for (std::size_t i = 0; i <= n; ++i) old_cuts[i] = decomp.cut(rb_axis, static_cast<int>(i));
    for (std::size_t c = 0; c < n; ++c) old_width[c] = old_cuts[c + 1] - old_cuts[c];

    // Target widths proportional to width/time, damped towards them.
    double denom = 0.0;
    for (std::size_t c = 0; c < n; ++c) denom += old_width[c] / slab_time[c];
    std::vector<double> cuts(n + 1);
    cuts.front() = 0.0;
    cuts.back() = rb_len;
    for (std::size_t i = 1; i < n; ++i) {
      const std::size_t c = i - 1;
      const double target = (old_width[c] / slab_time[c]) / denom * rb_len;
      const double w = old_width[c] + opts.rebalance_damping * (target - old_width[c]);
      cuts[i] = cuts[i - 1] + w;
      const double lim = kMaxShiftFraction * std::min(old_width[c], old_width[c + 1]);
      cuts[i] = std::clamp(cuts[i], old_cuts[i] - lim, old_cuts[i] + lim);
    }
    clamp_min_widths(cuts, rb_minw);
    if (cuts == old_cuts) return;
    decomp.set_cuts(rb_axis, cuts);
    ++boundary_shifts;
    if (rank == 0) shifts_counter.inc();
  };

  auto rebuild = [&] {
    // Boundary updates land exactly here, before the migrate that moves
    // atoms to their (possibly new) owners — so a shifted cut is always
    // followed by the migration honoring it, and exchange_ghosts re-reads
    // the bounds. Collective (allreduce) like the rest of rebuild.
    maybe_rebalance();
    atoms.resize(n_local);  // drop ghosts
    {
      // Migration + ghost exchange are communication, not list building:
      // keep them under md.halo so the per-phase breakdown separates
      // compute from exchange (halo.* subsections nest inside).
      ScopedTimer t("md.halo", "halo");
      WallTimer phase;
      migrate(comm, init.box, decomp, rank, atoms, &ids, sim.rebuild_every);
      n_local = atoms.size();
      partition_interior();
      halo_ex.exchange_ghosts(comm, atoms);
      phase_comm += phase.seconds();
    }
    {
      ScopedTimer t("md.neighbor", "md");
      WallTimer phase;
      nlist.build(init.box, atoms.pos, n_local, /*periodic=*/false);
      interior_list = nlist.prefix(n_interior);
      boundary_list = nlist.compact(n_interior, n_local, boundary_map);
      batoms = md::Atoms{};
      batoms.mass_by_type = atoms.mass_by_type;
      for (int a : boundary_map)
        batoms.add(atoms.pos[static_cast<std::size_t>(a)],
                   atoms.type[static_cast<std::size_t>(a)]);
      phase_neighbor += phase.seconds();
    }
    max_local = std::max(max_local, n_local);
    max_ghost = std::max(max_ghost, halo_ex.n_ghost());
  };

  // Two-phase force evaluation. The interior call zeroes every force slot
  // (locals and ghosts) and accumulates the interior centers' terms; the
  // boundary call runs on the compacted copy and is folded back with +=.
  // The same split runs on every step — rebuild steps included — so the
  // floating-point summation order never depends on which path a step
  // took. Energy/virial are per-center sums, so A + B is exact.
  md::ForceResult local_force;
  auto compute_interior = [&] {
    ScopedTimer t("md.force", "md");
    WallTimer phase;
    local_force = ff->compute(init.box, atoms, interior_list, /*periodic=*/false);
    phase_force += phase.seconds();
  };
  auto compute_boundary = [&] {
    ScopedTimer t("md.force", "md");
    WallTimer phase;
    for (std::size_t k = 0; k < boundary_map.size(); ++k)
      batoms.pos[k] = atoms.pos[static_cast<std::size_t>(boundary_map[k])];
    const md::ForceResult bres =
        ff->compute(init.box, batoms, boundary_list, /*periodic=*/false);
    for (std::size_t k = 0; k < boundary_map.size(); ++k)
      atoms.force[static_cast<std::size_t>(boundary_map[k])] += batoms.force[k];
    local_force.energy += bres.energy;
    local_force.virial += bres.virial;
    phase_force += phase.seconds();
  };

  std::vector<md::ThermoSample> thermo;
  auto sample = [&](int step) {
    ScopedTimer timer("md.sample", "md");
    // Local contributions -> one fused allreduce.
    std::vector<double> contrib(12, 0.0);
    double ke = 0.0;
    for (std::size_t a = 0; a < n_local; ++a)
      ke += 0.5 * atoms.mass(a) * norm2(atoms.vel[a]);
    contrib[0] = ke * md::kMv2ToEv;
    contrib[1] = local_force.energy;
    contrib[2] = static_cast<double>(n_local);
    for (std::size_t k = 0; k < 9; ++k) contrib[3 + k] = local_force.virial.m[k];
    const auto total = comm.allreduce_sum(contrib);
    md::ThermoSample s;
    s.step = step;
    s.kinetic = total[0];
    s.potential = total[1];
    const double n_atoms = total[2];
    s.temperature = n_atoms > 1
                        ? 2.0 * s.kinetic / ((3.0 * n_atoms - 3.0) * md::kBoltzmann)
                        : 0.0;
    const double virial_trace = total[3] + total[7] + total[11];
    s.pressure_bar = (n_atoms * md::kBoltzmann * s.temperature + virial_trace / 3.0) /
                     global_volume * md::kEvPerA3ToBar;
    thermo.push_back(s);
  };

  // Fleet-level health probe, run right after each thermo sample. Every
  // rank reduces the same global signals and feeds its own monitor, so
  // the watchdog automata advance identically everywhere; the trailing
  // max-allreduce of the encoded worst state is the cross-rank agreement
  // on how sick the run is.
  const double reservation = static_cast<double>(ff->neighbor_reservation());
  auto health_probe = [&](int step) {
    if (!health) return;
    obs::StepSignals sig;
    sig.step = step;
    sig.n_atoms = static_cast<double>(n_global);
    const md::ThermoSample& s = thermo.back();
    sig.total_energy = s.total();
    sig.temperature = s.temperature;
    double f2 = 0.0;
    for (std::size_t a = 0; a < n_local; ++a)
      f2 = std::max(f2, norm2(atoms.force[a]));
    sig.max_force = comm.allreduce_max(std::sqrt(f2));
    if (reservation > 0.0) {
      sig.neighbor_occupancy = comm.allreduce_max(
          static_cast<double>(nlist.max_neighbors()) / reservation);
    }
    const auto sums = comm.allreduce_sum(std::vector<double>{
        window_seconds, static_cast<double>(ff->extrapolations())});
    const double window_max = comm.allreduce_max(window_seconds);
    if (sums[0] > 0.0) sig.step_imbalance = window_max / (sums[0] / nranks);
    sig.extrapolations = sums[1];
    const obs::HealthState worst = health->observe_step(sig);
    const double agreed = comm.allreduce_max(
        static_cast<double>(obs::HealthMonitor::encode(worst)));
    worst_seen = std::max(worst_seen, static_cast<int>(agreed));
    window_seconds = 0.0;
    if (rank == 0) health->publish_gauges(obs::MetricsRegistry::instance());
  };

  auto half_kick = [&](std::size_t begin, std::size_t end) {
    ScopedTimer t("md.integrate", "md");
    for (std::size_t a = begin; a < end; ++a) {
      const double sc = 0.5 * sim.dt * md::kForceToAccel / atoms.mass(a);
      atoms.vel[a] += atoms.force[a] * sc;
    }
  };

  rebuild();
  compute_interior();
  compute_boundary();
  {
    ScopedTimer t("md.halo", "halo");
    halo_ex.reduce_forces(comm, atoms);
  }
  sample(0);
  health_probe(0);

  int since_rebuild = 0;
  std::uint64_t rebuilds = 0, early_rebuilds = 0;
  obs::Counter& steps_counter = obs::MetricsRegistry::instance().counter("md.steps");
  obs::Counter& rebuilds_counter =
      obs::MetricsRegistry::instance().counter("md.neighbor_rebuilds");
  obs::Counter& early_counter =
      obs::MetricsRegistry::instance().counter("md.early_rebuilds");
  obs::Histogram& step_seconds =
      obs::MetricsRegistry::instance().histogram("md.step_seconds");
  for (int step = 1; step <= sim.steps; ++step) {
    obs::TraceSpan step_span("md.step", "md");
    WallTimer step_timer;
    phase_comm = phase_neighbor = phase_force = 0.0;
    {
      // Half-kick + drift on local atoms only (ghosts are re-derived).
      ScopedTimer t("md.integrate", "md");
      for (std::size_t a = 0; a < n_local; ++a) {
        const double sc = 0.5 * sim.dt * md::kForceToAccel / atoms.mass(a);
        atoms.vel[a] += atoms.force[a] * sc;
        atoms.pos[a] += atoms.vel[a] * sim.dt;
      }
    }
    ++since_rebuild;
    bool rebuilt = false;
    if (since_rebuild >= sim.rebuild_every) {
      rebuild();
      rebuilt = true;
    } else if (opts.displacement_rebuild) {
      // Skin/2 displacement criterion, checked on local atoms only (every
      // atom is local on exactly one rank, so the OR over ranks covers
      // ghosts) and OR-allreduced so all ranks rebuild in lockstep —
      // migration and ghost exchange are collective.
      const bool mine = nlist.needs_rebuild(init.box, atoms.pos, n_local);
      if (comm.allreduce_max(mine ? 1.0 : 0.0) > 0.5) {
        rebuild();
        rebuilt = true;
        ++early_rebuilds;
        early_counter.inc();
      }
    }
    if (rebuilt) {
      since_rebuild = 0;
      ++rebuilds;
      rebuilds_counter.inc();
      // Ghosts are fresh from exchange_ghosts; evaluate both halves.
      compute_interior();
      compute_boundary();
    } else {
      // Overlap: post the ghost refresh, evaluate interior centers (their
      // lists reach no ghosts) while messages are in flight, complete the
      // refresh, then evaluate boundary centers against fresh ghosts.
      {
        ScopedTimer t("md.halo", "halo");
        WallTimer phase;
        halo_ex.begin_update_ghosts(comm, atoms);
        phase_comm += phase.seconds();
      }
      compute_interior();
      {
        ScopedTimer t("md.halo", "halo");
        WallTimer phase;
        halo_ex.finish_update_ghosts(comm, atoms);
        phase_comm += phase.seconds();
      }
      compute_boundary();
    }
    // Overlap the ghost-force reduction with the interior half-kick:
    // interior atoms sit farther than the halo width from every face, so
    // they are in no send slab — the reduction neither reads nor writes
    // their forces.
    {
      ScopedTimer t("md.halo", "halo");
      WallTimer phase;
      halo_ex.begin_reduce_forces(comm, atoms);
      phase_comm += phase.seconds();
    }
    half_kick(0, n_interior);
    {
      ScopedTimer t("md.halo", "halo");
      WallTimer phase;
      halo_ex.finish_reduce_forces(comm, atoms);
      phase_comm += phase.seconds();
    }
    half_kick(n_interior, n_local);
    const bool sampled = step % sim.thermo_every == 0 || step == sim.steps;
    if (sampled) {
      sample(step);
      health_probe(step);
    }
    if (rank == 0) steps_counter.inc();
    const double step_secs = step_timer.seconds();
    step_seconds.observe(step_secs);
    window_seconds += step_secs;
    // Load signal for the rebalancer (cheap either way, so it is tracked
    // even with rebalancing off — the gauge is useful on its own).
    step_ewma = ewma_seeded ? kEwmaAlpha * step_secs + (1.0 - kEwmaAlpha) * step_ewma
                            : step_secs;
    ewma_seeded = true;
    if (flight) {
      obs::FlightRecord r;
      r.step = step;
      r.step_seconds = step_secs;
      r.force_seconds = phase_force;
      r.neighbor_seconds = phase_neighbor;
      r.comm_seconds = phase_comm;
      r.health_bits = health ? health->state_bits() : 0;
      r.rebuilds = static_cast<std::uint32_t>(rebuilds);
      r.extrapolations = ff->extrapolations();
      flight->record(r);
    }
    if (sampled) {
      // Bookkeeping a post-mortem can cross-check: the step counter and
      // the synced metrics rewrite land *before* the test-only injection
      // hook, so a crash raised there finds flightrec last_step equal to
      // the logged md.steps.
      if (rank == 0 && !opts.metrics_rewrite_path.empty()) {
        obs::MetricsRegistry::instance().write_jsonl_file_sync(
            opts.metrics_rewrite_path);
      }
      if (opts.on_sample) opts.on_sample(rank, step);
    }
  }

  const double max_local_global = comm.allreduce_max(static_cast<double>(max_local));
  const double max_ghost_global = comm.allreduce_max(static_cast<double>(max_ghost));
  const double mean_local = static_cast<double>(n_global) / nranks;

  // Per-rank communication accounting, aggregated over minimpi reductions
  // so rank 0 can publish fleet-level gauges (mean/max expose imbalance).
  const double rank_bytes = static_cast<double>(halo_ex.bytes_sent());
  const double rank_wait = halo_ex.wait_seconds();
  const double rank_hidden = halo_ex.hidden_seconds();
  const auto comm_sums =
      comm.allreduce_sum(std::vector<double>{rank_bytes, rank_wait, rank_hidden});
  const double bytes_max = comm.allreduce_max(rank_bytes);
  const double wait_max = comm.allreduce_max(rank_wait);
  const double hidden_max = comm.allreduce_max(rank_hidden);
  // Steady-state neighbor workspace footprint: the parallel rebuild path
  // is allocation-free once warm, so the fleet-wide max is a meaningful
  // per-rank memory gauge (and a regression tripwire if it ever grows
  // with step count instead of plateauing).
  const double rank_nlist_bytes = static_cast<double>(nlist.workspace_bytes());
  const double nlist_bytes_max = comm.allreduce_max(rank_nlist_bytes);
  // Environment-matrix footprint of this rank's last build (thread-local,
  // so each rank reports its own): what the compact CSR costs vs what the
  // dense padded layout would — the Fig 3 memory-saving story per rank.
  const auto& env_stats = core::env_mat_thread_stats();
  const double rank_env_compact = static_cast<double>(env_stats.compact_bytes);
  const double rank_env_dense = static_cast<double>(env_stats.dense_bytes);
  const double env_compact_max = comm.allreduce_max(rank_env_compact);
  const double env_dense_max = comm.allreduce_max(rank_env_dense);
  const double latency_total = comm_sums[1] + comm_sums[2];
  const double overlap_ratio = latency_total > 0 ? comm_sums[2] / latency_total : 0.0;
  const CommStats cs = comm.stats();
  if (rank == 0) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.gauge("halo.bytes_per_rank_mean").set(comm_sums[0] / nranks);
    reg.gauge("halo.bytes_per_rank_max").set(bytes_max);
    reg.gauge("halo.wait_seconds_mean").set(comm_sums[1] / nranks);
    reg.gauge("halo.wait_seconds_max").set(wait_max);
    reg.gauge("halo.hidden_seconds_mean").set(comm_sums[2] / nranks);
    reg.gauge("halo.hidden_seconds_max").set(hidden_max);
    reg.gauge("halo.overlap_ratio").set(overlap_ratio);
    reg.gauge("neighbor.workspace_bytes_max").set(nlist_bytes_max);
    reg.gauge("env_mat.compact_bytes_max").set(env_compact_max);
    reg.gauge("env_mat.dense_bytes_max").set(env_dense_max);
    reg.gauge("md.load_imbalance")
        .set(mean_local > 0 ? max_local_global / mean_local : 1.0);
    // Transport-layer counters (docs/OBSERVABILITY.md "comm.*"): for the
    // threads backend these are world totals, for shm/tcp this process's
    // rank — either way rank 0's view of its transport.
    reg.gauge("comm.messages").set(static_cast<double>(cs.messages));
    reg.gauge("comm.bytes").set(static_cast<double>(cs.bytes));
    reg.gauge("comm.barriers").set(static_cast<double>(cs.barriers));
    reg.gauge("comm.reductions").set(static_cast<double>(cs.reductions));
    reg.gauge("comm.posts_immediate").set(static_cast<double>(cs.posts_immediate));
    reg.gauge("comm.posts_deferred").set(static_cast<double>(cs.posts_deferred));
    reg.gauge("comm.wire_bytes").set(static_cast<double>(cs.wire_bytes));
    reg.gauge("rebalance.boundary_shifts").set(static_cast<double>(boundary_shifts));
  }

  // The registry serializes internally; no outer lock is needed even when
  // rank threads of one process record concurrently.
  obs::MetricsRegistry::instance().record_event(
      "rank", {{"rank", static_cast<double>(rank)},
               {"halo_bytes", rank_bytes},
               {"halo_messages", static_cast<double>(halo_ex.messages_sent())},
               {"halo_wait_seconds", rank_wait},
               {"halo_hidden_seconds", rank_hidden},
               {"neighbor_workspace_bytes", rank_nlist_bytes},
               {"env_compact_bytes", rank_env_compact},
               {"env_dense_bytes", rank_env_dense},
               {"local_atoms", static_cast<double>(n_local)},
               {"ghost_atoms", static_cast<double>(halo_ex.n_ghost())}});

  result.thermo = thermo;
  result.comm = cs;
  if (rank == 0) {
    result.max_local_atoms = static_cast<std::size_t>(max_local_global);
    result.max_ghost_atoms = static_cast<std::size_t>(max_ghost_global);
    result.load_imbalance = mean_local > 0 ? max_local_global / mean_local : 1.0;
    result.halo_wait_seconds = comm_sums[1];
    result.halo_hidden_seconds = comm_sums[2];
    result.halo_overlap_ratio = overlap_ratio;
    result.neighbor_rebuilds = rebuilds;
    result.early_rebuilds = early_rebuilds;
    result.boundary_shifts = boundary_shifts;
    if (health) result.health = health->report();
    result.worst_health = worst_seen;
  }

  if (opts.gather_state) {
    // State gather over the communicator itself (works over every backend,
    // unlike shared arrays): each rank packs [id, pos, vel, force] per
    // atom; rank 0 receives in rank order and scatters by global id.
    if (rank == 0) {
      result.final_pos.resize(n_global);
      result.final_vel.resize(n_global);
      result.final_force.resize(n_global);
      auto place = [&](const double* rec) {
        const auto id = static_cast<std::size_t>(rec[0]);
        DP_CHECK(id < n_global);
        result.final_pos[id] = {rec[1], rec[2], rec[3]};
        result.final_vel[id] = {rec[4], rec[5], rec[6]};
        result.final_force[id] = {rec[7], rec[8], rec[9]};
      };
      for (std::size_t a = 0; a < n_local; ++a) {
        const double rec[10] = {static_cast<double>(ids[a]),
                                atoms.pos[a].x,   atoms.pos[a].y,   atoms.pos[a].z,
                                atoms.vel[a].x,   atoms.vel[a].y,   atoms.vel[a].z,
                                atoms.force[a].x, atoms.force[a].y, atoms.force[a].z};
        place(rec);
      }
      for (int r = 1; r < nranks; ++r) {
        Request req = comm.irecv(r, kGatherTagBase + r);
        const auto packed = req.take_vec<double>();
        DP_CHECK(packed.size() % 10 == 0);
        for (std::size_t k = 0; k < packed.size() / 10; ++k) place(packed.data() + 10 * k);
      }
    } else {
      std::vector<double> packed;
      packed.reserve(10 * n_local);
      for (std::size_t a = 0; a < n_local; ++a) {
        packed.insert(packed.end(),
                      {static_cast<double>(ids[a]),
                       atoms.pos[a].x,   atoms.pos[a].y,   atoms.pos[a].z,
                       atoms.vel[a].x,   atoms.vel[a].y,   atoms.vel[a].z,
                       atoms.force[a].x, atoms.force[a].y, atoms.force[a].z});
      }
      // Buffered post: the transport owns the bytes once posted, so the
      // Request can be dropped without waiting (see minimpi.hpp).
      comm.isend_vec(0, kGatherTagBase + rank, packed);
    }
  }

  result.wall_seconds = wall.seconds();
  return result;
}

DistributedRunResult run_distributed_md(int nranks, const md::Configuration& global,
                                        const ForceFieldFactory& factory,
                                        const md::SimulationConfig& sim,
                                        const DistributedOptions& opts) {
  DistributedRunResult result;
  // Guards rank 0's write of the result against the master thread's read
  // (run_parallel's join also orders it; the lock keeps the discipline
  // explicit and TSan-visible).
  Mutex result_mu;
  WallTimer wall;
  const CommStats world = run_parallel(nranks, [&](Communicator& comm) {
    DistributedRunResult r = run_distributed_md_rank(comm, global, factory, sim, opts);
    if (comm.rank() == 0) {
      MutexLock lock(result_mu);
      result = std::move(r);
    }
  });
  // World totals read after the join (every rank finished), matching the
  // historical semantics; the rank function's own snapshot is taken at
  // rank 0's last collective and may miss the tail of other ranks' sends.
  result.comm = world;
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace dp::par
