// Pluggable byte transport under dp::par::minimpi.
//
// minimpi's Communicator API (tagged p2p, nonblocking Requests, collectives)
// is the contract; a Transport is how the bytes actually move. Three
// backends implement it (DESIGN.md "Transport" has the full matrix):
//
//   * threads — the original in-process mailbox World (minimpi.cpp): ranks
//     are threads of one process, sends are buffered copies, collectives run
//     on shared memory. Default; zero behavior change vs the seed.
//   * shm — one POSIX shared-memory segment of N*N SPSC byte rings for
//     co-located processes (transport_shm.cpp).
//   * tcp — one socket per rank pair plus a reader/flush thread, for real
//     machine boundaries (transport_tcp.cpp).
//
// A Transport instance either serves every rank of one process (threads) or
// exactly one rank of a multi-process world (shm/tcp); the `me`/`src`
// parameters carry the caller's rank so both shapes share one interface.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dp::par {

class Communicator;

/// Aggregate communication counters. For the threads backend these are
/// world totals (summed over ranks); for shm/tcp they are this process's
/// view of its one rank.
struct CommStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t barriers = 0;
  std::uint64_t reductions = 0;
  /// Per-transport accounting: p2p posts whose delivery responsibility
  /// transferred at post time vs posts still in flight when the call
  /// returned (only tcp defers — see DESIGN.md on Request lifetimes), and
  /// bytes that actually crossed a process boundary (payload + framing;
  /// zero for threads, where "transport" is a memcpy).
  std::uint64_t posts_immediate = 0;
  std::uint64_t posts_deferred = 0;
  std::uint64_t wire_bytes = 0;
  const char* transport = "threads";  ///< backend that produced these numbers
};

/// Identifies a deferred send inside its transport. kSendComplete means the
/// post completed synchronously (threads and shm always do).
using SendTicket = std::uint64_t;
constexpr SendTicket kSendComplete = 0;

class Transport {
 public:
  virtual ~Transport() = default;

  virtual const char* name() const = 0;
  virtual int size() const = 0;

  /// Posts one tagged message. The payload is copied before returning, so
  /// the caller's buffer is immediately reusable regardless of backend.
  /// Returns kSendComplete when the post finished synchronously, else a
  /// ticket to poll with send_done()/send_wait().
  virtual SendTicket send(int src, int dest, int tag, const void* data,
                          std::size_t bytes) = 0;
  virtual bool send_done(SendTicket t) {
    (void)t;
    return true;  // backends that never defer are born complete
  }
  virtual void send_wait(SendTicket t) { (void)t; }

  /// Blocking receive of the oldest message matching (src, tag).
  virtual std::vector<std::byte> recv(int me, int src, int tag) = 0;
  /// Single nonblocking poll; true moves the payload into `out`.
  virtual bool try_recv(int me, int src, int tag, std::vector<std::byte>& out) = 0;

  /// Collectives. The base implementations run on tagged p2p (gather to
  /// rank 0 in rank order, then broadcast) over tags >= kCollectiveTag, so
  /// any backend that moves bytes gets deterministic collectives for free:
  /// the reduction folds in *rank* order at rank 0, independent of arrival
  /// order. (The threads backend overrides both with its shared-memory
  /// versions, which fold in arrival order — order-sensitive reductions are
  /// only used for telemetry, never for forces; see DESIGN.md.)
  virtual void barrier(int me);
  virtual std::vector<double> allreduce(int me, const std::vector<double>& x,
                                        bool take_max);

  /// Tags at or above this value are reserved for the transport layer's own
  /// collective plumbing; Communicator-level code must stay below it.
  static constexpr int kCollectiveTag = 1 << 24;

  CommStats stats() const {
    CommStats s;
    s.messages = n_messages_.load(std::memory_order_relaxed);
    s.bytes = n_bytes_.load(std::memory_order_relaxed);
    s.barriers = n_barriers_.load(std::memory_order_relaxed);
    s.reductions = n_reductions_.load(std::memory_order_relaxed);
    s.posts_immediate = n_posts_immediate_.load(std::memory_order_relaxed);
    s.posts_deferred = n_posts_deferred_.load(std::memory_order_relaxed);
    s.wire_bytes = n_wire_bytes_.load(std::memory_order_relaxed);
    s.transport = name();
    return s;
  }

 protected:
  /// Stats counters are relaxed atomics: monotonic telemetry, read after
  /// the world quiesced (thread join or ProcessGroup teardown supplies the
  /// happens-before), so no stronger ordering is needed — the same argument
  /// as the seed World's counters (minimpi.cpp).
  std::atomic<std::uint64_t> n_messages_{0};
  std::atomic<std::uint64_t> n_bytes_{0};
  std::atomic<std::uint64_t> n_barriers_{0};
  std::atomic<std::uint64_t> n_reductions_{0};
  std::atomic<std::uint64_t> n_posts_immediate_{0};
  std::atomic<std::uint64_t> n_posts_deferred_{0};
  std::atomic<std::uint64_t> n_wire_bytes_{0};
};

enum class TransportKind { Threads, Shm, Tcp };

/// Bootstrap identity of one process in a multi-process world.
struct TransportConfig {
  TransportKind kind = TransportKind::Threads;
  int rank = 0;
  int world = 1;
  /// shm: segment name (any token; the backend prefixes "/");
  /// tcp: rank 0's rendezvous address as "host:port" (numeric IPv4 or
  /// "localhost").
  std::string rendezvous;
  /// Progress timeout: a blocked recv / full-ring send / bootstrap wait
  /// that makes no progress for this long raises a DP_CHECK fatal (which
  /// dumps the flight recorders) instead of hanging on a dead peer.
  double timeout_seconds = 60.0;
};

/// Parses TransportKind from its CLI/env spelling ("threads"|"shm"|"tcp").
TransportKind parse_transport_kind(const std::string& s);

/// Reads DP_TRANSPORT, DP_RANK, DP_WORLD, DP_RENDEZVOUS and DP_TIMEOUT
/// (seconds); unset variables keep the defaults above.
TransportConfig transport_config_from_env();

std::unique_ptr<Transport> make_shm_transport(const TransportConfig& cfg);
std::unique_ptr<Transport> make_tcp_transport(const TransportConfig& cfg);

/// Binds an ephemeral loopback port, returns it, and closes the socket.
/// For tests composing a tcp rendezvous address without touching socket(2)
/// themselves (raw socket calls outside the transport backends are banned
/// by lint). Inherently racy — another process could claim the port before
/// the rendezvous listener binds it — but fine for single-machine tests.
int pick_free_tcp_port();

/// One process's membership in a multi-process world: connects the
/// configured backend (blocking until every rank has joined) and exposes
/// the rank's Communicator. Destroying the group disconnects.
class ProcessGroup {
 public:
  explicit ProcessGroup(const TransportConfig& cfg);
  ~ProcessGroup();
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  int rank() const { return rank_; }
  int size() const { return transport_->size(); }
  Communicator& comm() { return *comm_; }
  CommStats stats() const { return transport_->stats(); }

 private:
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<Communicator> comm_;
  int rank_ = 0;
};

}  // namespace dp::par
