// Domain-decomposed MD driver: the parallel equivalent of md::Simulation.
//
// Per step (the LAMMPS-style cycle the paper runs on Summit/Fugaku), with
// halo traffic overlapped with force work via nonblocking minimpi:
//   half-kick + drift -> rebuild check (every rebuild_every steps, or early
//   when the OR-allreduced skin/2 displacement criterion fires: drop ghosts,
//   migrate, reorder locals interior-first, re-exchange ghosts, rebuild
//   local neighbor lists) -> post ghost-position refresh, evaluate forces on
//   *interior* centers (their lists reach no ghosts) while messages are in
//   flight, complete the refresh, evaluate *boundary* centers -> post
//   ghost-force reduction, interior half-kick while in flight, complete the
//   reduction, boundary half-kick; thermodynamics via allreduce.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "md/force_field.hpp"
#include "md/simulation.hpp"
#include "obs/health.hpp"
#include "parallel/halo.hpp"
#include "parallel/minimpi.hpp"

namespace dp::par {

/// Each rank builds its own force-field instance (one "TensorFlow graph copy"
/// per rank — the memory cost Fig 6 is about).
using ForceFieldFactory = std::function<std::unique_ptr<md::ForceField>()>;

struct DistributedRunResult {
  std::vector<md::ThermoSample> thermo;  ///< global samples (identical on all ranks)
  CommStats comm;                        ///< world-aggregate message statistics
  double wall_seconds = 0.0;
  std::size_t max_local_atoms = 0;
  std::size_t max_ghost_atoms = 0;
  /// max/mean local atoms over ranks — 1.0 is perfect balance (the paper's
  /// Fig 6c notes sub-regions are "carefully divided to avoid load-balance
  /// problems").
  double load_imbalance = 1.0;
  /// Halo latency accounting, summed over ranks: seconds blocked in recv,
  /// seconds of compute executed while halo messages were in flight, and
  /// hidden / (hidden + wait) — the fraction of halo latency taken off the
  /// critical path by the nonblocking overlap.
  double halo_wait_seconds = 0.0;
  double halo_hidden_seconds = 0.0;
  double halo_overlap_ratio = 0.0;
  /// Neighbor-list rebuilds per rank (ranks rebuild in lockstep), and the
  /// subset forced early by the skin/2 displacement trigger.
  std::uint64_t neighbor_rebuilds = 0;
  std::uint64_t early_rebuilds = 0;
  /// Slab-boundary updates applied by the measurement-driven rebalancer
  /// (0 unless DistributedOptions::rebalance).
  std::uint64_t boundary_shifts = 0;
  /// Snapshot of the final state, sorted by global atom id (for parity
  /// tests against a serial run). Filled only when gather_state is set.
  std::vector<Vec3> final_pos, final_vel, final_force;
  /// End-of-run health report (rank 0's monitor; empty unless
  /// DistributedOptions::health was set). Signals are globally reduced
  /// before observation, so this is the fleet view, not one rank's.
  obs::HealthReport health;
  /// Worst encoded health state any rank saw at any sample (0/1/2) —
  /// the max-allreduce of per-rank worst states.
  int worst_health = 0;
};

struct DistributedOptions {
  std::array<int, 3> grid{0, 0, 0};  ///< ranks per dimension; {0,0,0} = auto
  bool gather_state = false;
  bool init_velocities = true;  ///< draw MB velocities before distribution
  /// Rebuild early when any rank trips the skin/2 displacement criterion
  /// (OR-allreduced each step). Off reproduces the historical fixed-period
  /// behavior, which lets fast atoms silently leave the skin — only tests
  /// demonstrating that failure mode should disable this.
  bool displacement_rebuild = true;
  /// Run-health watchdogs (not owned): every rank evaluates the standard
  /// set on globally reduced signals at each thermo sample, and the
  /// encoded states are max-allreduced so all ranks agree on the worst.
  const obs::HealthConfig* health = nullptr;
  /// Arm one flight recorder per rank (dumped as
  /// `<flight_dir>/flightrec.rank<k>.json` by the crash handlers) and
  /// install the SIGSEGV/SIGABRT handlers.
  bool flight_recorder = false;
  std::string flight_dir = ".";
  /// When non-empty, rank 0 rewrites + fsyncs the metrics registry as
  /// JSONL here at every sample step, so a crash later in the run leaves
  /// a log whose `md.steps` matches the flight recorders' `last_step`.
  std::string metrics_rewrite_path;
  /// Test hook, invoked on every rank after a sample step's bookkeeping
  /// (sample + flight record + metrics rewrite have all landed).
  /// Crash-injection tests raise their signal from here.
  std::function<void(int rank, int step)> on_sample;

  /// Measurement-driven slab rebalancing (paper Fig 6c's "carefully divided"
  /// sub-regions, made automatic). Along the axis with the most ranks, slab
  /// boundaries start at atom-count-equalizing positions and then follow the
  /// measured per-rank step-time EWMAs: every `rebalance_every` neighbor
  /// rebuilds the EWMAs are allgathered (a one-hot allreduce, exact in fp)
  /// and each boundary takes a damped step towards the inverse-time target
  /// widths. Off (the default) leaves the uniform grid untouched and
  /// reproduces the unbalanced trajectory bitwise.
  bool rebalance = false;
  int rebalance_every = 4;          ///< rebuilds between boundary updates
  double rebalance_damping = 0.5;   ///< fraction of the target step applied
  /// Skip the update while max/mean slab time - 1 is below this (keeps
  /// boundaries still once balanced, so migration churn stops).
  double rebalance_hysteresis = 0.05;
};

/// SPMD entry point: runs this rank's share of the global configuration over
/// an already-connected communicator — in-process rank threads
/// (run_distributed_md below) and one-rank-per-process worlds
/// (ProcessGroup::comm() over the shm/tcp transports) take the identical
/// path. Every rank must pass the same configuration and options (each
/// derives the decomposition and initial velocities independently, which is
/// why init is deterministic in sim.seed). `result.thermo` is filled on
/// every rank; the aggregate fields and the gathered final state (sent to
/// rank 0 over tags >= 1<<22) are meaningful on rank 0 only.
DistributedRunResult run_distributed_md_rank(Communicator& comm,
                                             const md::Configuration& global,
                                             const ForceFieldFactory& factory,
                                             const md::SimulationConfig& sim,
                                             const DistributedOptions& opts = {});

/// Runs `sim.steps` MD steps of the global configuration on `nranks`
/// in-process ranks.
DistributedRunResult run_distributed_md(int nranks, const md::Configuration& global,
                                        const ForceFieldFactory& factory,
                                        const md::SimulationConfig& sim,
                                        const DistributedOptions& opts = {});

}  // namespace dp::par
