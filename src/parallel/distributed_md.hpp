// Domain-decomposed MD driver: the parallel equivalent of md::Simulation.
//
// Per step (the LAMMPS-style cycle the paper runs on Summit/Fugaku):
//   half-kick + drift -> [every rebuild_every steps: drop ghosts, migrate,
//   re-exchange ghosts, rebuild local neighbor lists | otherwise: refresh
//   ghost positions] -> force evaluation on local centers -> ghost-force
//   reduction -> half-kick; thermodynamics via allreduce.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "md/force_field.hpp"
#include "md/simulation.hpp"
#include "parallel/halo.hpp"
#include "parallel/minimpi.hpp"

namespace dp::par {

/// Each rank builds its own force-field instance (one "TensorFlow graph copy"
/// per rank — the memory cost Fig 6 is about).
using ForceFieldFactory = std::function<std::unique_ptr<md::ForceField>()>;

struct DistributedRunResult {
  std::vector<md::ThermoSample> thermo;  ///< global samples (identical on all ranks)
  CommStats comm;                        ///< world-aggregate message statistics
  double wall_seconds = 0.0;
  std::size_t max_local_atoms = 0;
  std::size_t max_ghost_atoms = 0;
  /// max/mean local atoms over ranks — 1.0 is perfect balance (the paper's
  /// Fig 6c notes sub-regions are "carefully divided to avoid load-balance
  /// problems").
  double load_imbalance = 1.0;
  /// Snapshot of the final state, sorted by global atom id (for parity
  /// tests against a serial run). Filled only when gather_state is set.
  std::vector<Vec3> final_pos, final_vel, final_force;
};

struct DistributedOptions {
  std::array<int, 3> grid{0, 0, 0};  ///< ranks per dimension; {0,0,0} = auto
  bool gather_state = false;
  bool init_velocities = true;  ///< draw MB velocities before distribution
};

/// Runs `sim.steps` MD steps of the global configuration on `nranks`
/// in-process ranks.
DistributedRunResult run_distributed_md(int nranks, const md::Configuration& global,
                                        const ForceFieldFactory& factory,
                                        const md::SimulationConfig& sim,
                                        const DistributedOptions& opts = {});

}  // namespace dp::par
