// 3D Cartesian domain decomposition: each rank owns one orthorhombic
// sub-region of the global box (paper Fig 1 (a)).
//
// By default the grid is uniform. Each dimension can instead carry an
// explicit cut array (set_cuts) so slab boundaries can move — the
// measurement-driven rebalancing in distributed_md shifts them from
// per-rank step-time EWMAs. With no cuts set, every query reproduces the
// seed's uniform arithmetic bit-for-bit, which is what keeps the
// rebalance-off path bitwise identical to history.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "md/box.hpp"

namespace dp::par {

class Decomp {
 public:
  /// grid[d] ranks along dimension d; grid[0]*grid[1]*grid[2] == nranks.
  Decomp(const md::Box& box, std::array<int, 3> grid);

  /// Picks the grid with the most-cubic sub-domains for nranks ranks.
  static std::array<int, 3> choose_grid(const md::Box& box, int nranks);

  int nranks() const { return grid_[0] * grid_[1] * grid_[2]; }
  const std::array<int, 3>& grid() const { return grid_; }

  std::array<int, 3> coords_of(int rank) const;
  int rank_of(const std::array<int, 3>& coords) const;

  /// Owning rank of a (wrapped) position.
  int owner_of(const Vec3& pos) const;

  /// Grid coordinate along `dim` owning the (wrapped, in-box) coordinate x.
  /// This is the single owner function every caller (owner_of, migrate)
  /// must share so "who owns this atom" has exactly one answer.
  int coord_of(int dim, double x) const;

  /// Sub-region bounds of a rank: [lo, hi) per dimension.
  Vec3 lo(int rank) const;
  Vec3 hi(int rank) const;

  /// Boundary plane `i` (0..grid[dim]) and slab width of coordinate c
  /// along `dim`, honoring cuts when set.
  double cut(int dim, int i) const;
  double width(int dim, int c) const { return cut(dim, c + 1) - cut(dim, c); }

  /// Installs explicit boundary planes along `dim`: grid[dim]+1 strictly
  /// increasing values spanning exactly [0, L[dim]]. Passing the uniform
  /// planes is NOT the same as never calling this — the uniform fast path
  /// divides instead of searching — so rebalancing callers only install
  /// cuts when they actually move a boundary.
  void set_cuts(int dim, const std::vector<double>& cuts);
  bool has_cuts(int dim) const { return !cuts_[static_cast<std::size_t>(dim)].empty(); }

  /// Face neighbor in dimension d, direction dir (+1/-1), periodic wrap.
  int neighbor(int rank, int dim, int dir) const;

  /// Smallest sub-domain extent — the halo width must not exceed it.
  double min_extent() const;

  /// Ghost-shell volume fraction: the analytic communication-to-computation
  /// proxy the paper's Sec 6.4.1 argument is built on. Uses the mean slab
  /// widths (exact for the uniform grid).
  double ghost_fraction(double halo_width) const;

 private:
  md::Box box_;
  std::array<int, 3> grid_;
  Vec3 cell_;
  /// Per-dimension boundary planes; empty = uniform (the seed behavior).
  std::array<std::vector<double>, 3> cuts_;
};

}  // namespace dp::par
