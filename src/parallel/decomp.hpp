// 3D Cartesian domain decomposition: each rank owns one orthorhombic
// sub-region of the global box (paper Fig 1 (a)).
#pragma once

#include <array>

#include "common/types.hpp"
#include "md/box.hpp"

namespace dp::par {

class Decomp {
 public:
  /// grid[d] ranks along dimension d; grid[0]*grid[1]*grid[2] == nranks.
  Decomp(const md::Box& box, std::array<int, 3> grid);

  /// Picks the grid with the most-cubic sub-domains for nranks ranks.
  static std::array<int, 3> choose_grid(const md::Box& box, int nranks);

  int nranks() const { return grid_[0] * grid_[1] * grid_[2]; }
  const std::array<int, 3>& grid() const { return grid_; }

  std::array<int, 3> coords_of(int rank) const;
  int rank_of(const std::array<int, 3>& coords) const;

  /// Owning rank of a (wrapped) position.
  int owner_of(const Vec3& pos) const;

  /// Sub-region bounds of a rank: [lo, hi) per dimension.
  Vec3 lo(int rank) const;
  Vec3 hi(int rank) const;

  /// Face neighbor in dimension d, direction dir (+1/-1), periodic wrap.
  int neighbor(int rank, int dim, int dir) const;

  /// Smallest sub-domain extent — the halo width must not exceed it.
  double min_extent() const;

  /// Ghost-shell volume fraction: the analytic communication-to-computation
  /// proxy the paper's Sec 6.4.1 argument is built on.
  double ghost_fraction(double halo_width) const;

 private:
  md::Box box_;
  std::array<int, 3> grid_;
  Vec3 cell_;
};

}  // namespace dp::par
