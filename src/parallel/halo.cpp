#include "parallel/halo.hpp"

#include <cmath>

#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "parallel/minimpi.hpp"
#include "obs/trace.hpp"

namespace dp::par {

namespace {
/// Process-wide halo traffic totals (summed over ranks; the per-rank view
/// lives in the HaloExchange instance counters).
///
/// Thread-safety: each HaloExchange instance is owned by exactly one rank
/// thread — instance state (stages_, byte counters) is never shared. The
/// only cross-rank state here are these two metrics Counters, whose inc()
/// is a relaxed atomic add, and the function-local static that creates them
/// (guarded by C++ magic-statics). Rank threads otherwise communicate only
/// through minimpi send/recv, which supplies the happens-before for the
/// exchanged payloads (see minimpi.cpp).
struct HaloMetrics {
  obs::Counter& bytes = obs::MetricsRegistry::instance().counter("halo.bytes_sent");
  obs::Counter& messages = obs::MetricsRegistry::instance().counter("halo.messages");
  static HaloMetrics& get() {
    static HaloMetrics m;
    return m;
  }
};
}  // namespace

void HaloExchange::post_send(Communicator& comm, int dest, int tag,
                             const std::vector<double>& payload) {
  HaloMetrics& metrics = HaloMetrics::get();
  comm.isend_vec(dest, tag, payload);  // buffered: the Request is born complete
  bytes_sent_ += payload.size() * sizeof(double);
  ++messages_sent_;
  metrics.bytes.inc(payload.size() * sizeof(double));
  metrics.messages.inc();
}

std::vector<double> HaloExchange::wait_recv(Request& req) {
  WallTimer wait;
  auto incoming = req.take_vec<double>();
  const double waited = wait.seconds();
  wait_seconds_ += waited;
  TimerRegistry::instance().add("halo.wait", waited);
  return incoming;
}

std::vector<double> HaloExchange::send_recv(Communicator& comm, int dest, int src, int tag,
                                            const std::vector<double>& payload) {
  post_send(comm, dest, tag, payload);
  Request req = comm.irecv(src, tag);
  return wait_recv(req);
}

void HaloExchange::note_overlap_window() {
  const double hidden = overlap_timer_.seconds();
  hidden_seconds_ += hidden;
  TimerRegistry::instance().add("halo.hidden", hidden);
}

std::vector<double> HaloExchange::pack_positions(const Stage& st, const md::Atoms& atoms) const {
  std::vector<double> payload;
  payload.reserve(3 * st.send_idx.size());
  for (int a : st.send_idx) {
    const Vec3 p = atoms.pos[static_cast<std::size_t>(a)] + st.shift;
    payload.push_back(p.x);
    payload.push_back(p.y);
    payload.push_back(p.z);
  }
  return payload;
}

std::vector<double> HaloExchange::pack_ghost_forces(const Stage& st,
                                                    const md::Atoms& atoms) const {
  std::vector<double> payload;
  payload.reserve(3 * st.recv_count);
  for (std::size_t k = 0; k < st.recv_count; ++k) {
    const Vec3& f = atoms.force[st.recv_begin + k];
    payload.push_back(f.x);
    payload.push_back(f.y);
    payload.push_back(f.z);
  }
  return payload;
}

HaloExchange::HaloExchange(const md::Box& box, const Decomp& decomp, int rank,
                           double halo_width)
    : box_(box), decomp_(decomp), rank_(rank), halo_(halo_width) {
  DP_CHECK_MSG(halo_width <= decomp.min_extent(),
               "halo width " << halo_width << " exceeds sub-domain extent "
                             << decomp.min_extent() << " — use fewer ranks");
  lo_ = decomp.lo(rank);
  hi_ = decomp.hi(rank);
}

void HaloExchange::exchange_ghosts(Communicator& comm, md::Atoms& atoms) {
  ScopedTimer timer("halo.exchange", "halo");
  n_local_ = atoms.size();
  stages_.clear();
  const auto coords = decomp_.coords_of(rank_);
  const Vec3 L = box_.lengths();

  // Slab boundaries can move between rebuilds (the rebalancer installs new
  // cuts on the Decomp this exchanger references), so the bounds cached at
  // construction are refreshed at every structural exchange. The rebalancer
  // clamps slab widths to keep halo_ <= min_extent(), but re-check so a bad
  // cut fails loudly at the exchange that would use it, not as silently
  // missing ghosts.
  DP_CHECK_MSG(halo_ <= decomp_.min_extent(),
               "halo width " << halo_ << " exceeds sub-domain extent "
                             << decomp_.min_extent() << " after a boundary shift");
  lo_ = decomp_.lo(rank_);
  hi_ = decomp_.hi(rank_);

  int tag = 0;
  for (int dim = 0; dim < 3; ++dim) {
    // Only atoms present before this dimension's pair of stages are
    // candidates: ghosts received in the +d stage must not bounce back in
    // the -d stage (they belong to that very neighbor).
    const std::size_t candidates = atoms.size();
    for (int dir : {+1, -1}) {
      Stage st;
      st.tag = tag++;
      st.send_to = decomp_.neighbor(rank_, dim, dir);
      st.recv_from = decomp_.neighbor(rank_, dim, -dir);
      const int n_grid = decomp_.grid()[static_cast<std::size_t>(dim)];
      const bool crossing = (dir > 0) ? (coords[static_cast<std::size_t>(dim)] == n_grid - 1)
                                      : (coords[static_cast<std::size_t>(dim)] == 0);
      st.shift = {};
      if (crossing) st.shift[static_cast<std::size_t>(dim)] = (dir > 0) ? -L[static_cast<std::size_t>(dim)] : L[static_cast<std::size_t>(dim)];

      // Slab selection over everything currently held (locals + prior
      // ghosts): that is what propagates edge/corner ghosts.
      const double edge = (dir > 0) ? hi_[static_cast<std::size_t>(dim)] - halo_
                                    : lo_[static_cast<std::size_t>(dim)] + halo_;
      std::vector<double> payload;
      for (std::size_t a = 0; a < candidates; ++a) {
        const double c = atoms.pos[a][static_cast<std::size_t>(dim)];
        const bool in_slab = (dir > 0) ? (c >= edge) : (c < edge);
        if (!in_slab) continue;
        st.send_idx.push_back(static_cast<int>(a));
        const Vec3 p = atoms.pos[a] + st.shift;
        payload.push_back(p.x);
        payload.push_back(p.y);
        payload.push_back(p.z);
        payload.push_back(static_cast<double>(atoms.type[a]));
      }
      const auto incoming = send_recv(comm, st.send_to, st.recv_from, st.tag, payload);
      DP_CHECK(incoming.size() % 4 == 0);
      st.recv_begin = atoms.size();
      st.recv_count = incoming.size() / 4;
      for (std::size_t k = 0; k < st.recv_count; ++k) {
        atoms.pos.push_back({incoming[4 * k], incoming[4 * k + 1], incoming[4 * k + 2]});
        atoms.vel.push_back({});
        atoms.force.push_back({});
        atoms.type.push_back(static_cast<int>(incoming[4 * k + 3]));
      }
      stages_.push_back(std::move(st));
    }
  }
  n_ghost_ = atoms.size() - n_local_;
}

void HaloExchange::update_ghost_positions(Communicator& comm, md::Atoms& atoms) {
  begin_update_ghosts(comm, atoms);
  finish_update_ghosts(comm, atoms);
}

void HaloExchange::begin_update_ghosts(Communicator& comm, md::Atoms& atoms) {
  ScopedTimer timer("halo.update", "halo");
  DP_CHECK_MSG(!update_active_ && !reduce_active_,
               "begin_update_ghosts: another begin/finish pair is still open");
  // The x stages' send_idx reference only local atoms (they were selected
  // from the pre-ghost candidate range), whose positions are final for this
  // step — so both x sends can be posted before any force work. The y and z
  // payloads read ghost positions that arrive with the earlier stages; those
  // sends are posted in finish_update_ghosts() as their inputs land.
  pending_.clear();
  pending_.reserve(stages_.size());
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const Stage& st = stages_[s];
    if (s < 2) post_send(comm, st.send_to, 200 + st.tag, pack_positions(st, atoms));
    pending_.push_back(comm.irecv(st.recv_from, 200 + st.tag));
  }
  update_active_ = true;
  overlap_timer_.reset();
}

void HaloExchange::finish_update_ghosts(Communicator& comm, md::Atoms& atoms) {
  ScopedTimer timer("halo.update", "halo");
  DP_CHECK_MSG(update_active_, "finish_update_ghosts without begin_update_ghosts");
  note_overlap_window();
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    // Entering dimension d (stage pairs {2,3} = y, {4,5} = z): the previous
    // dimension's ghosts are unpacked, so both of this dimension's payloads
    // are now readable. Their send_idx predate this dimension's recvs, so
    // neither pair member depends on the other — post both at once.
    if (s >= 2 && s % 2 == 0)
      for (std::size_t t : {s, s + 1})
        post_send(comm, stages_[t].send_to, 200 + stages_[t].tag,
                  pack_positions(stages_[t], atoms));
    const Stage& st = stages_[s];
    const auto incoming = wait_recv(pending_[s]);
    DP_CHECK(incoming.size() == 3 * st.recv_count);
    for (std::size_t k = 0; k < st.recv_count; ++k)
      atoms.pos[st.recv_begin + k] = {incoming[3 * k], incoming[3 * k + 1],
                                      incoming[3 * k + 2]};
  }
  pending_.clear();
  update_active_ = false;
}

void HaloExchange::reduce_forces(Communicator& comm, md::Atoms& atoms) {
  begin_reduce_forces(comm, atoms);
  finish_reduce_forces(comm, atoms);
}

void HaloExchange::begin_reduce_forces(Communicator& comm, md::Atoms& atoms) {
  ScopedTimer timer("halo.reduce", "halo");
  DP_CHECK_MSG(!update_active_ && !reduce_active_,
               "begin_reduce_forces: another begin/finish pair is still open");
  // Reversed plan: the z stages go first. Their payloads read the forces on
  // their own ghost ranges, which are final as soon as the local force
  // evaluation is done, and the sibling z stage's fold cannot touch them
  // (its send_idx predate both z recv ranges) — so both z sends post here.
  // The y and x payloads absorb folds from the stages before them in the
  // reversed order; those sends are posted in finish_reduce_forces().
  pending_.clear();
  pending_.reserve(stages_.size());
  for (std::size_t r = 0; r < stages_.size(); ++r) {
    const Stage& st = stages_[stages_.size() - 1 - r];
    if (r < 2) post_send(comm, st.recv_from, 400 + st.tag, pack_ghost_forces(st, atoms));
    pending_.push_back(comm.irecv(st.send_to, 400 + st.tag));
  }
  reduce_active_ = true;
  overlap_timer_.reset();
}

void HaloExchange::finish_reduce_forces(Communicator& comm, md::Atoms& atoms) {
  ScopedTimer timer("halo.reduce", "halo");
  DP_CHECK_MSG(reduce_active_, "finish_reduce_forces without begin_reduce_forces");
  note_overlap_window();
  for (std::size_t r = 0; r < stages_.size(); ++r) {
    // Entering dimension d of the reversed walk (r == 2 → y, r == 4 → x):
    // every fold that can write into this dimension's ghost ranges has run
    // (later dimensions' send_idx never reach them), so both payloads are
    // final — post both at once. The fold order below is exactly the
    // blocking loop's, so the reduction stays bitwise reproducible.
    if (r >= 2 && r % 2 == 0)
      for (std::size_t t : {r, r + 1}) {
        const Stage& ps = stages_[stages_.size() - 1 - t];
        post_send(comm, ps.recv_from, 400 + ps.tag, pack_ghost_forces(ps, atoms));
      }
    const Stage& st = stages_[stages_.size() - 1 - r];
    const auto incoming = wait_recv(pending_[r]);
    DP_CHECK(incoming.size() == 3 * st.send_idx.size());
    // Fold the returned ghost forces into the atoms we sent out.
    for (std::size_t k = 0; k < st.send_idx.size(); ++k) {
      atoms.force[static_cast<std::size_t>(st.send_idx[k])] +=
          Vec3{incoming[3 * k], incoming[3 * k + 1], incoming[3 * k + 2]};
    }
  }
  pending_.clear();
  reduce_active_ = false;
}

void migrate(Communicator& comm, const md::Box& box, const Decomp& decomp, int rank,
             md::Atoms& atoms, std::vector<std::int64_t>* ids, int rebuild_every) {
  ScopedTimer timer("halo.migrate", "halo");
  // Wrap everything first so coordinate comparisons are global.
  for (auto& p : atoms.pos) p = box.wrap(p);
  const auto coords = decomp.coords_of(rank);
  const auto grid = decomp.grid();

  int tag = 600;
  for (int dim = 0; dim < 3; ++dim) {
    const int n_grid = grid[static_cast<std::size_t>(dim)];
    if (n_grid == 1) continue;
    const int my_c = coords[static_cast<std::size_t>(dim)];

    std::vector<double> up, down;
    md::Atoms kept;
    kept.mass_by_type = atoms.mass_by_type;
    std::vector<std::int64_t> kept_ids;
    auto pack = [&](std::vector<double>& buf, std::size_t a) {
      const Vec3& p = atoms.pos[a];
      const Vec3& v = atoms.vel[a];
      buf.insert(buf.end(), {p.x, p.y, p.z, v.x, v.y, v.z,
                             static_cast<double>(atoms.type[a]),
                             ids ? static_cast<double>((*ids)[a]) : 0.0});
    };
    for (std::size_t a = 0; a < atoms.size(); ++a) {
      // Ownership must agree with Decomp::owner_of (the post-condition below
      // asks it), so route through the same coord_of — it honors shifted cuts.
      const int c = decomp.coord_of(dim, atoms.pos[a][static_cast<std::size_t>(dim)]);
      if (c == my_c) {
        kept.pos.push_back(atoms.pos[a]);
        kept.vel.push_back(atoms.vel[a]);
        kept.force.push_back(atoms.force[a]);
        kept.type.push_back(atoms.type[a]);
        if (ids) kept_ids.push_back((*ids)[a]);
      } else {
        // Shortest periodic direction towards the owner.
        const int fwd = ((c - my_c) % n_grid + n_grid) % n_grid;
        pack(fwd <= n_grid / 2 ? up : down, a);
      }
    }
    const int up_rank = decomp.neighbor(rank, dim, +1);
    const int down_rank = decomp.neighbor(rank, dim, -1);
    comm.send_vec(up_rank, tag, up);
    comm.send_vec(down_rank, tag + 1, down);
    for (auto [src, t] : {std::pair{down_rank, tag}, std::pair{up_rank, tag + 1}}) {
      const auto incoming = comm.recv_vec<double>(src, t);
      DP_CHECK(incoming.size() % 8 == 0);
      for (std::size_t k = 0; k < incoming.size() / 8; ++k) {
        const double* rec = incoming.data() + 8 * k;
        kept.pos.push_back({rec[0], rec[1], rec[2]});
        kept.vel.push_back({rec[3], rec[4], rec[5]});
        kept.force.push_back({});
        kept.type.push_back(static_cast<int>(rec[6]));
        if (ids) kept_ids.push_back(static_cast<std::int64_t>(rec[7]));
      }
    }
    atoms = std::move(kept);
    if (ids) *ids = std::move(kept_ids);
    tag += 2;
  }

  // Post-condition: one hop per dimension was enough. When it wasn't, say
  // which atom, how far past this rank's slab it sits, and what rebuild
  // period produced the situation — a finite overshoot on a fast atom means
  // `rebuild_every` (migration cadence) is mis-tuned for the dynamics, while
  // a wild coordinate points at real corruption (NaN forces, broken box).
  const Vec3 my_lo = decomp.lo(rank);
  const Vec3 my_hi = decomp.hi(rank);
  for (std::size_t a = 0; a < atoms.size(); ++a) {
    const Vec3& p = atoms.pos[a];
    const int owner = decomp.owner_of(p);
    if (owner == rank) continue;
    double overshoot = 0.0;
    for (std::size_t d = 0; d < 3; ++d) {
      if (p[d] < my_lo[d]) overshoot = std::max(overshoot, my_lo[d] - p[d]);
      if (p[d] >= my_hi[d]) overshoot = std::max(overshoot, p[d] - my_hi[d]);
    }
    DP_CHECK_MSG(false, "migrate: atom id "
                            << (ids ? (*ids)[a] : static_cast<std::int64_t>(a))
                            << " at (" << p.x << ", " << p.y << ", " << p.z
                            << ") travelled more than one sub-domain in one rebuild "
                               "interval (owner rank " << owner << ", holding rank "
                            << rank << ", " << overshoot
                            << " length units past the local slab, rebuild period "
                            << rebuild_every
                            << " steps). If the coordinate looks physical, lower "
                               "rebuild_every (the displacement trigger only guards "
                               "the neighbor skin, not sub-domain hops); if not, "
                               "suspect corrupted forces or box");
  }
}

}  // namespace dp::par
