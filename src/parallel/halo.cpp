#include "parallel/halo.hpp"

#include <cmath>

#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "parallel/minimpi.hpp"
#include "obs/trace.hpp"

namespace dp::par {

namespace {
/// Process-wide halo traffic totals (summed over ranks; the per-rank view
/// lives in the HaloExchange instance counters).
///
/// Thread-safety: each HaloExchange instance is owned by exactly one rank
/// thread — instance state (stages_, byte counters) is never shared. The
/// only cross-rank state here are these two metrics Counters, whose inc()
/// is a relaxed atomic add, and the function-local static that creates them
/// (guarded by C++ magic-statics). Rank threads otherwise communicate only
/// through minimpi send/recv, which supplies the happens-before for the
/// exchanged payloads (see minimpi.cpp).
struct HaloMetrics {
  obs::Counter& bytes = obs::MetricsRegistry::instance().counter("halo.bytes_sent");
  obs::Counter& messages = obs::MetricsRegistry::instance().counter("halo.messages");
  static HaloMetrics& get() {
    static HaloMetrics m;
    return m;
  }
};
}  // namespace

std::vector<double> HaloExchange::send_recv(Communicator& comm, int dest, int src, int tag,
                                            const std::vector<double>& payload) {
  HaloMetrics& metrics = HaloMetrics::get();
  comm.send_vec(dest, tag, payload);
  bytes_sent_ += payload.size() * sizeof(double);
  ++messages_sent_;
  metrics.bytes.inc(payload.size() * sizeof(double));
  metrics.messages.inc();
  WallTimer wait;
  auto incoming = comm.recv_vec<double>(src, tag);
  const double waited = wait.seconds();
  wait_seconds_ += waited;
  TimerRegistry::instance().add("halo.wait", waited);
  return incoming;
}

HaloExchange::HaloExchange(const md::Box& box, const Decomp& decomp, int rank,
                           double halo_width)
    : box_(box), decomp_(decomp), rank_(rank), halo_(halo_width) {
  DP_CHECK_MSG(halo_width <= decomp.min_extent(),
               "halo width " << halo_width << " exceeds sub-domain extent "
                             << decomp.min_extent() << " — use fewer ranks");
  lo_ = decomp.lo(rank);
  hi_ = decomp.hi(rank);
}

void HaloExchange::exchange_ghosts(Communicator& comm, md::Atoms& atoms) {
  ScopedTimer timer("halo.exchange", "halo");
  n_local_ = atoms.size();
  stages_.clear();
  const auto coords = decomp_.coords_of(rank_);
  const Vec3 L = box_.lengths();

  int tag = 0;
  for (int dim = 0; dim < 3; ++dim) {
    // Only atoms present before this dimension's pair of stages are
    // candidates: ghosts received in the +d stage must not bounce back in
    // the -d stage (they belong to that very neighbor).
    const std::size_t candidates = atoms.size();
    for (int dir : {+1, -1}) {
      Stage st;
      st.tag = tag++;
      st.send_to = decomp_.neighbor(rank_, dim, dir);
      st.recv_from = decomp_.neighbor(rank_, dim, -dir);
      const int n_grid = decomp_.grid()[static_cast<std::size_t>(dim)];
      const bool crossing = (dir > 0) ? (coords[static_cast<std::size_t>(dim)] == n_grid - 1)
                                      : (coords[static_cast<std::size_t>(dim)] == 0);
      st.shift = {};
      if (crossing) st.shift[static_cast<std::size_t>(dim)] = (dir > 0) ? -L[static_cast<std::size_t>(dim)] : L[static_cast<std::size_t>(dim)];

      // Slab selection over everything currently held (locals + prior
      // ghosts): that is what propagates edge/corner ghosts.
      const double edge = (dir > 0) ? hi_[static_cast<std::size_t>(dim)] - halo_
                                    : lo_[static_cast<std::size_t>(dim)] + halo_;
      std::vector<double> payload;
      for (std::size_t a = 0; a < candidates; ++a) {
        const double c = atoms.pos[a][static_cast<std::size_t>(dim)];
        const bool in_slab = (dir > 0) ? (c >= edge) : (c < edge);
        if (!in_slab) continue;
        st.send_idx.push_back(static_cast<int>(a));
        const Vec3 p = atoms.pos[a] + st.shift;
        payload.push_back(p.x);
        payload.push_back(p.y);
        payload.push_back(p.z);
        payload.push_back(static_cast<double>(atoms.type[a]));
      }
      const auto incoming = send_recv(comm, st.send_to, st.recv_from, st.tag, payload);
      DP_CHECK(incoming.size() % 4 == 0);
      st.recv_begin = atoms.size();
      st.recv_count = incoming.size() / 4;
      for (std::size_t k = 0; k < st.recv_count; ++k) {
        atoms.pos.push_back({incoming[4 * k], incoming[4 * k + 1], incoming[4 * k + 2]});
        atoms.vel.push_back({});
        atoms.force.push_back({});
        atoms.type.push_back(static_cast<int>(incoming[4 * k + 3]));
      }
      stages_.push_back(std::move(st));
    }
  }
  n_ghost_ = atoms.size() - n_local_;
}

void HaloExchange::update_ghost_positions(Communicator& comm, md::Atoms& atoms) {
  ScopedTimer timer("halo.update", "halo");
  for (const Stage& st : stages_) {
    std::vector<double> payload;
    payload.reserve(3 * st.send_idx.size());
    for (int a : st.send_idx) {
      const Vec3 p = atoms.pos[static_cast<std::size_t>(a)] + st.shift;
      payload.push_back(p.x);
      payload.push_back(p.y);
      payload.push_back(p.z);
    }
    const auto incoming = send_recv(comm, st.send_to, st.recv_from, 200 + st.tag, payload);
    DP_CHECK(incoming.size() == 3 * st.recv_count);
    for (std::size_t k = 0; k < st.recv_count; ++k)
      atoms.pos[st.recv_begin + k] = {incoming[3 * k], incoming[3 * k + 1],
                                      incoming[3 * k + 2]};
  }
}

void HaloExchange::reduce_forces(Communicator& comm, md::Atoms& atoms) {
  ScopedTimer timer("halo.reduce", "halo");
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    const Stage& st = *it;
    // Return the forces accumulated on the ghosts this stage created...
    std::vector<double> payload;
    payload.reserve(3 * st.recv_count);
    for (std::size_t k = 0; k < st.recv_count; ++k) {
      const Vec3& f = atoms.force[st.recv_begin + k];
      payload.push_back(f.x);
      payload.push_back(f.y);
      payload.push_back(f.z);
    }
    // ... and fold the returned forces into the atoms we sent out.
    const auto incoming = send_recv(comm, st.recv_from, st.send_to, 400 + st.tag, payload);
    DP_CHECK(incoming.size() == 3 * st.send_idx.size());
    for (std::size_t k = 0; k < st.send_idx.size(); ++k) {
      atoms.force[static_cast<std::size_t>(st.send_idx[k])] +=
          Vec3{incoming[3 * k], incoming[3 * k + 1], incoming[3 * k + 2]};
    }
  }
}

void migrate(Communicator& comm, const md::Box& box, const Decomp& decomp, int rank,
             md::Atoms& atoms, std::vector<std::int64_t>* ids) {
  ScopedTimer timer("halo.migrate", "halo");
  // Wrap everything first so coordinate comparisons are global.
  for (auto& p : atoms.pos) p = box.wrap(p);
  const auto coords = decomp.coords_of(rank);
  const auto grid = decomp.grid();

  int tag = 600;
  for (int dim = 0; dim < 3; ++dim) {
    const int n_grid = grid[static_cast<std::size_t>(dim)];
    if (n_grid == 1) continue;
    const double cell = box.lengths()[static_cast<std::size_t>(dim)] / n_grid;
    const int my_c = coords[static_cast<std::size_t>(dim)];

    std::vector<double> up, down;
    md::Atoms kept;
    kept.mass_by_type = atoms.mass_by_type;
    std::vector<std::int64_t> kept_ids;
    auto pack = [&](std::vector<double>& buf, std::size_t a) {
      const Vec3& p = atoms.pos[a];
      const Vec3& v = atoms.vel[a];
      buf.insert(buf.end(), {p.x, p.y, p.z, v.x, v.y, v.z,
                             static_cast<double>(atoms.type[a]),
                             ids ? static_cast<double>((*ids)[a]) : 0.0});
    };
    for (std::size_t a = 0; a < atoms.size(); ++a) {
      const int c = std::min(static_cast<int>(atoms.pos[a][static_cast<std::size_t>(dim)] / cell),
                             n_grid - 1);
      if (c == my_c) {
        kept.pos.push_back(atoms.pos[a]);
        kept.vel.push_back(atoms.vel[a]);
        kept.force.push_back(atoms.force[a]);
        kept.type.push_back(atoms.type[a]);
        if (ids) kept_ids.push_back((*ids)[a]);
      } else {
        // Shortest periodic direction towards the owner.
        const int fwd = ((c - my_c) % n_grid + n_grid) % n_grid;
        pack(fwd <= n_grid / 2 ? up : down, a);
      }
    }
    const int up_rank = decomp.neighbor(rank, dim, +1);
    const int down_rank = decomp.neighbor(rank, dim, -1);
    comm.send_vec(up_rank, tag, up);
    comm.send_vec(down_rank, tag + 1, down);
    for (auto [src, t] : {std::pair{down_rank, tag}, std::pair{up_rank, tag + 1}}) {
      const auto incoming = comm.recv_vec<double>(src, t);
      DP_CHECK(incoming.size() % 8 == 0);
      for (std::size_t k = 0; k < incoming.size() / 8; ++k) {
        const double* rec = incoming.data() + 8 * k;
        kept.pos.push_back({rec[0], rec[1], rec[2]});
        kept.vel.push_back({rec[3], rec[4], rec[5]});
        kept.force.push_back({});
        kept.type.push_back(static_cast<int>(rec[6]));
        if (ids) kept_ids.push_back(static_cast<std::int64_t>(rec[7]));
      }
    }
    atoms = std::move(kept);
    if (ids) *ids = std::move(kept_ids);
    tag += 2;
  }

  // Post-condition: one hop per dimension was enough.
  for (const auto& p : atoms.pos)
    DP_CHECK_MSG(decomp.owner_of(p) == rank, "atom travelled more than one sub-domain per "
                                             "migration; migrate more often");
}

}  // namespace dp::par
