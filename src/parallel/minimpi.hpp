// minimpi — a message-passing runtime with pluggable transports.
//
// Stands in for MPI on machines without one (see DESIGN.md substitutions):
// point-to-point messages are tagged byte buffers matched by (source, tag),
// and collectives are built on the transport. By default ranks are threads
// of one process exchanging buffered copies (run_parallel); the same
// Communicator API also runs multi-process over shared-memory rings or TCP
// sockets (transport.hpp's ProcessGroup). What the scaling experiments need
// from MPI — the halo-exchange *pattern* and its accounted byte volume — is
// preserved exactly across backends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "parallel/transport.hpp"

namespace dp::par {

class World;
class Communicator;

/// Handle to a nonblocking point-to-point operation (isend / irecv).
///
/// Lifetime and threading discipline (see docs/STATIC_ANALYSIS.md):
///  * A Request is owned by exactly one rank thread — the one that posted
///    it — and must not outlive the run_parallel callback that created it
///    (it holds a pointer to that rank's Communicator). It is move-only;
///    moving transfers ownership and leaves the source empty.
///  * Completion happens-before: test()/wait() match the message under the
///    destination mailbox mutex, the same hand-off blocking recv() uses, so
///    a completed Request's payload is fully visible to the owning thread.
///    No new cross-thread state is introduced by the nonblocking API.
///  * Send completion is backend-dependent. On the buffered threads and shm
///    transports isend() completes at post time, so send Requests are born
///    complete. On tcp a post can outlive the call (the payload is copied
///    into a transport-owned flush queue when the socket buffer is full);
///    the Request then completes when the bytes reach the kernel. Either
///    way the payload is copied before isend() returns, so discarding a
///    send Request early is always safe — test()/wait() only report
///    progress, they never guard the caller's buffer.
class Request {
 public:
  Request() = default;
  Request(Request&& o) noexcept { steal(o); }
  Request& operator=(Request&& o) noexcept {
    if (this != &o) steal(o);
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True if this handle refers to an operation (empty handles are inert).
  bool valid() const { return kind_ != Kind::None; }
  /// True once the operation has completed (send: always).
  bool done() const { return done_; }

  /// Nonblocking completion probe: polls the mailbox once for a matching
  /// message. Returns true (and captures the payload) when complete.
  bool test();
  /// Blocks until the operation completes (irecv: until the message lands).
  void wait();

  /// Payload of a completed irecv; waits first if still in flight. Moves
  /// the bytes out — call once.
  std::vector<std::byte> take();
  template <class T>
  std::vector<T> take_vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = take();
    DP_CHECK_MSG(bytes.size() % sizeof(T) == 0, "message size not a multiple of element size");
    std::vector<T> v(bytes.size() / sizeof(T));
    // Empty messages leave both pointers null; memcpy(null, null, 0) is UB.
    if (!bytes.empty()) std::memcpy(v.data(), bytes.data(), bytes.size());
    return v;
  }

 private:
  friend class Communicator;
  enum class Kind : std::uint8_t { None, Send, Recv };

  void steal(Request& o) {
    kind_ = o.kind_;
    done_ = o.done_;
    comm_ = o.comm_;
    src_ = o.src_;
    tag_ = o.tag_;
    ticket_ = o.ticket_;
    payload_ = std::move(o.payload_);
    o.kind_ = Kind::None;
    o.done_ = false;
    o.comm_ = nullptr;
    o.ticket_ = kSendComplete;
  }

  Kind kind_ = Kind::None;
  bool done_ = false;
  Communicator* comm_ = nullptr;
  int src_ = -1;
  int tag_ = 0;
  SendTicket ticket_ = kSendComplete;  ///< deferred-send handle (tcp only)
  std::vector<std::byte> payload_;
};

/// Per-rank handle, valid inside run_parallel's callback.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking tagged send/recv of raw bytes (send never blocks: buffered).
  void send(int dest, int tag, const void* data, std::size_t bytes);
  std::vector<std::byte> recv(int src, int tag);

  /// Nonblocking point-to-point. isend() buffers the payload and returns a
  /// completed Request; irecv() returns a Request that completes (via
  /// test()/wait()) when a message matching (src, tag) arrives. Posting
  /// order is free: matching is by (src, tag), FIFO within one stream.
  Request isend(int dest, int tag, const void* data, std::size_t bytes);
  Request irecv(int src, int tag);

  template <class T>
  Request isend_vec(int dest, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return isend(dest, tag, v.data(), v.size() * sizeof(T));
  }

  template <class T>
  void send_vec(int dest, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag, v.data(), v.size() * sizeof(T));
  }
  template <class T>
  std::vector<T> recv_vec(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = recv(src, tag);
    DP_CHECK_MSG(bytes.size() % sizeof(T) == 0, "message size not a multiple of element size");
    std::vector<T> v(bytes.size() / sizeof(T));
    // Empty messages leave both pointers null; memcpy(null, null, 0) is UB.
    if (!bytes.empty()) std::memcpy(v.data(), bytes.data(), bytes.size());
    return v;
  }

  void barrier();

  /// Root's buffer is copied to every rank (returns the root's data).
  std::vector<double> broadcast(const std::vector<double>& x, int root);

  /// Concatenates every rank's contribution in rank order; the full vector
  /// is returned on `root` (empty elsewhere).
  std::vector<double> gatherv(const std::vector<double>& x, int root);

  /// Sum-reduction available on every rank after the call.
  double allreduce_sum(double x);
  std::vector<double> allreduce_sum(const std::vector<double>& x);
  std::uint64_t allreduce_sum(std::uint64_t x);
  double allreduce_max(double x);

  /// This backend's view of the communication counters (threads: world
  /// totals; shm/tcp: this process's rank).
  CommStats stats() const;
  /// Spelling of the backend moving this rank's bytes ("threads"|...).
  const char* transport_name() const;

 private:
  friend class World;
  friend class Request;
  friend class ProcessGroup;
  friend CommStats run_parallel(int, const std::function<void(Communicator&)>&);
  Communicator(Transport* transport, int rank) : transport_(transport), rank_(rank) {}

  /// Single nonblocking mailbox poll for (src, tag); true = message moved
  /// into `out`.
  bool try_recv(int src, int tag, std::vector<std::byte>& out);

  Transport* transport_;
  int rank_;
};

/// Runs `fn(comm)` on `nranks` concurrent ranks; rethrows the first rank
/// failure after joining. Returns the accumulated communication statistics.
CommStats run_parallel(int nranks, const std::function<void(Communicator&)>& fn);

}  // namespace dp::par
