// minimpi — an in-process message-passing runtime.
//
// Stands in for MPI on machines without one (see DESIGN.md substitutions):
// ranks are threads, point-to-point messages are queued byte buffers matched
// by (source, tag), and collectives are built on a shared barrier. What the
// scaling experiments need from MPI — the halo-exchange *pattern* and its
// accounted byte volume — is preserved exactly; the transport is shared
// memory.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace dp::par {

/// Aggregate communication counters (per world, summed over ranks).
struct CommStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t barriers = 0;
  std::uint64_t reductions = 0;
};

class World;

/// Per-rank handle, valid inside run_parallel's callback.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking tagged send/recv of raw bytes (send never blocks: buffered).
  void send(int dest, int tag, const void* data, std::size_t bytes);
  std::vector<std::byte> recv(int src, int tag);

  template <class T>
  void send_vec(int dest, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag, v.data(), v.size() * sizeof(T));
  }
  template <class T>
  std::vector<T> recv_vec(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = recv(src, tag);
    DP_CHECK_MSG(bytes.size() % sizeof(T) == 0, "message size not a multiple of element size");
    std::vector<T> v(bytes.size() / sizeof(T));
    // Empty messages leave both pointers null; memcpy(null, null, 0) is UB.
    if (!bytes.empty()) std::memcpy(v.data(), bytes.data(), bytes.size());
    return v;
  }

  void barrier();

  /// Root's buffer is copied to every rank (returns the root's data).
  std::vector<double> broadcast(const std::vector<double>& x, int root);

  /// Concatenates every rank's contribution in rank order; the full vector
  /// is returned on `root` (empty elsewhere).
  std::vector<double> gatherv(const std::vector<double>& x, int root);

  /// Sum-reduction available on every rank after the call.
  double allreduce_sum(double x);
  std::vector<double> allreduce_sum(const std::vector<double>& x);
  std::uint64_t allreduce_sum(std::uint64_t x);
  double allreduce_max(double x);

 private:
  friend class World;
  friend CommStats run_parallel(int, const std::function<void(Communicator&)>&);
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}
  World* world_;
  int rank_;
};

/// Runs `fn(comm)` on `nranks` concurrent ranks; rethrows the first rank
/// failure after joining. Returns the accumulated communication statistics.
CommStats run_parallel(int nranks, const std::function<void(Communicator&)>& fn);

}  // namespace dp::par
