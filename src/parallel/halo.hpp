// Ghost-region (halo) exchange and atom migration.
//
// The staged 6-direction scheme: ghosts travel +x, -x, then +y, -y (seeing
// the x ghosts, which populates edges), then +z, -z (corners). Positions sent
// across a periodic boundary are shifted by the box length so ghosts sit
// geometrically adjacent to the receiving sub-domain; force reduction walks
// the same plan backwards, so every ghost force lands on its owner.
#pragma once

#include <cstdint>
#include <vector>

#include "md/atoms.hpp"
#include "md/box.hpp"
#include "parallel/decomp.hpp"
#include "parallel/minimpi.hpp"

namespace dp::par {

class HaloExchange {
 public:
  /// halo_width = model cutoff + neighbor skin; must fit in one sub-domain.
  HaloExchange(const md::Box& box, const Decomp& decomp, int rank, double halo_width);

  /// Appends ghost atoms to `atoms` (positions possibly outside the box) and
  /// records the exchange plan. `atoms` must hold exactly the local atoms.
  void exchange_ghosts(Communicator& comm, md::Atoms& atoms);

  /// Re-sends current positions along the recorded plan (between neighbor
  /// list rebuilds, when membership hasn't changed).
  void update_ghost_positions(Communicator& comm, md::Atoms& atoms);

  /// Sends ghost forces back along the reversed plan, accumulating into the
  /// owners' force arrays; ghost forces are consumed.
  void reduce_forces(Communicator& comm, md::Atoms& atoms);

  std::size_t n_local() const { return n_local_; }
  std::size_t n_ghost() const { return n_ghost_; }

  /// Lifetime communication accounting for this rank's exchanger — the
  /// per-rank numbers the distributed driver aggregates over minimpi
  /// reductions at the end of a run.
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  /// Seconds spent blocked in recv (wait + unpack) across all exchanges.
  double wait_seconds() const { return wait_seconds_; }

 private:
  struct Stage {
    int send_to = -1, recv_from = -1;
    int tag = 0;
    std::vector<int> send_idx;  ///< indices into the atom array at send time
    Vec3 shift;                 ///< periodic shift applied to sent positions
    std::size_t recv_begin = 0, recv_count = 0;
  };

  /// send + timed recv of one stage, updating the communication counters.
  std::vector<double> send_recv(Communicator& comm, int dest, int src, int tag,
                                const std::vector<double>& payload);

  md::Box box_;
  const Decomp& decomp_;
  int rank_;
  double halo_;
  Vec3 lo_, hi_;
  std::vector<Stage> stages_;
  std::size_t n_local_ = 0, n_ghost_ = 0;
  std::uint64_t bytes_sent_ = 0, messages_sent_ = 0;
  double wait_seconds_ = 0.0;
};

/// Moves atoms that left this rank's sub-domain to their new owners (one
/// staged hop per dimension; callers migrate often enough that atoms never
/// travel more than one sub-domain per migration). `ids` (optional) carries
/// opaque per-atom identifiers along.
void migrate(Communicator& comm, const md::Box& box, const Decomp& decomp, int rank,
             md::Atoms& atoms, std::vector<std::int64_t>* ids = nullptr);

}  // namespace dp::par
