// Ghost-region (halo) exchange and atom migration.
//
// The staged 6-direction scheme: ghosts travel +x, -x, then +y, -y (seeing
// the x ghosts, which populates edges), then +z, -z (corners). Positions sent
// across a periodic boundary are shifted by the box length so ghosts sit
// geometrically adjacent to the receiving sub-domain; force reduction walks
// the same plan backwards, so every ghost force lands on its owner.
#pragma once

#include <cstdint>
#include <vector>

#include "common/timer.hpp"
#include "md/atoms.hpp"
#include "md/box.hpp"
#include "parallel/decomp.hpp"
#include "parallel/minimpi.hpp"

namespace dp::par {

class HaloExchange {
 public:
  /// halo_width = model cutoff + neighbor skin; must fit in one sub-domain.
  HaloExchange(const md::Box& box, const Decomp& decomp, int rank, double halo_width);

  /// Appends ghost atoms to `atoms` (positions possibly outside the box) and
  /// records the exchange plan. `atoms` must hold exactly the local atoms.
  void exchange_ghosts(Communicator& comm, md::Atoms& atoms);

  /// Re-sends current positions along the recorded plan (between neighbor
  /// list rebuilds, when membership hasn't changed). Equivalent to
  /// begin_update_ghosts() immediately followed by finish_update_ghosts().
  void update_ghost_positions(Communicator& comm, md::Atoms& atoms);

  /// Nonblocking ghost-position refresh. begin posts the x-leg isends (their
  /// payloads read only local positions) and the irecvs of all six stages,
  /// then returns so force work on interior atoms can run while messages are
  /// in flight; finish completes the staged plan (the y payloads read the x
  /// ghosts, the z payloads read both, so those legs are posted as their
  /// inputs arrive). begin/finish pairs must not nest or interleave with the
  /// reduce pair.
  void begin_update_ghosts(Communicator& comm, md::Atoms& atoms);
  void finish_update_ghosts(Communicator& comm, md::Atoms& atoms);

  /// Sends ghost forces back along the reversed plan, accumulating into the
  /// owners' force arrays; ghost forces are consumed. Equivalent to
  /// begin_reduce_forces() immediately followed by finish_reduce_forces().
  void reduce_forces(Communicator& comm, md::Atoms& atoms);

  /// Nonblocking ghost-force reduction. begin posts the reversed plan's
  /// first (z) leg — its payloads are final as soon as the local force
  /// evaluation is done — plus every irecv; work that does not read boundary
  /// forces (e.g. the interior half-kick) runs while messages are in flight;
  /// finish folds incoming forces in exactly the blocking call's stage
  /// order, so the reduction stays bitwise reproducible.
  void begin_reduce_forces(Communicator& comm, md::Atoms& atoms);
  void finish_reduce_forces(Communicator& comm, md::Atoms& atoms);

  std::size_t n_local() const { return n_local_; }
  std::size_t n_ghost() const { return n_ghost_; }

  /// Lifetime communication accounting for this rank's exchanger — the
  /// per-rank numbers the distributed driver aggregates over minimpi
  /// reductions at the end of a run.
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  /// Seconds spent blocked in recv (wait + unpack) across all exchanges.
  double wait_seconds() const { return wait_seconds_; }
  /// Seconds of compute executed between a begin_* post and the matching
  /// finish_* — the window in which halo traffic progressed off the
  /// critical path (the latency-hiding the paper's Sec 3.5.4 relies on).
  double hidden_seconds() const { return hidden_seconds_; }

 private:
  struct Stage {
    int send_to = -1, recv_from = -1;
    int tag = 0;
    std::vector<int> send_idx;  ///< indices into the atom array at send time
    Vec3 shift;                 ///< periodic shift applied to sent positions
    std::size_t recv_begin = 0, recv_count = 0;
  };

  /// isend of one stage payload, updating the communication counters.
  void post_send(Communicator& comm, int dest, int tag, const std::vector<double>& payload);
  /// Timed completion of a posted irecv, charged to wait_seconds_.
  std::vector<double> wait_recv(Request& req);
  /// post_send + irecv + wait_recv of one lockstep stage (structural
  /// exchange at rebuild time, where payload sizes change).
  std::vector<double> send_recv(Communicator& comm, int dest, int src, int tag,
                                const std::vector<double>& payload);
  std::vector<double> pack_positions(const Stage& st, const md::Atoms& atoms) const;
  std::vector<double> pack_ghost_forces(const Stage& st, const md::Atoms& atoms) const;
  /// Charges the begin->finish window to hidden_seconds_.
  void note_overlap_window();

  md::Box box_;
  const Decomp& decomp_;
  int rank_;
  double halo_;
  Vec3 lo_, hi_;
  std::vector<Stage> stages_;
  std::size_t n_local_ = 0, n_ghost_ = 0;
  std::uint64_t bytes_sent_ = 0, messages_sent_ = 0;
  double wait_seconds_ = 0.0;
  double hidden_seconds_ = 0.0;

  /// In-flight nonblocking exchange: one pending irecv per stage plus the
  /// overlap-window timer. Instance state owned by one rank thread, like
  /// everything else in this class; the Requests carry the mailbox
  /// happens-before (see minimpi.cpp).
  std::vector<Request> pending_;
  WallTimer overlap_timer_;
  bool update_active_ = false;
  bool reduce_active_ = false;
};

/// Moves atoms that left this rank's sub-domain to their new owners (one
/// staged hop per dimension; callers migrate often enough that atoms never
/// travel more than one sub-domain per migration). `ids` (optional) carries
/// opaque per-atom identifiers along. `rebuild_every` (optional) is the
/// caller's rebuild period, quoted in the post-condition diagnostic when an
/// atom is found to have travelled more than one sub-domain per migration.
void migrate(Communicator& comm, const md::Box& box, const Decomp& decomp, int rank,
             md::Atoms& atoms, std::vector<std::int64_t>* ids = nullptr,
             int rebuild_every = -1);

}  // namespace dp::par
