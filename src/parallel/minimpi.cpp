#include "parallel/minimpi.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "common/thread_annotations.hpp"

namespace dp::par {

namespace {
struct Message {
  int src;
  int tag;
  std::vector<std::byte> payload;
};
}  // namespace

// The in-process "threads" Transport: ranks are threads of one process, and
// a send is a buffered copy into the destination's mailbox.
//
// Threading discipline (verified race-free under TSan; keep it that way):
//
//  * Mailboxes: one mutex + condvar per destination rank. send() copies the
//    payload, then publishes the message under the destination's mutex and
//    notifies; recv() scans the queue under the same mutex and sleeps on the
//    condvar when its (src, tag) match is absent. The unlock in send()
//    happens-before the matching lock in recv(), so the payload bytes are
//    fully visible to the receiver. No rank ever holds two mailbox locks at
//    once — there is no lock ordering to violate. The nonblocking API rides
//    the same edges: isend() is send() (buffered, completes at post time)
//    and Request::test()/wait() match under the destination mailbox mutex
//    via try_recv()/recv(), so a completed Request's payload is published
//    exactly like a blocking receive's.
//
//  * Barrier: a single mutex guards (count, generation). The last arriving
//    rank resets the count, bumps the generation and notifies; waiters sleep
//    on "generation changed", which is immune to spurious wakeups and to a
//    rank re-entering the next barrier before stragglers observed this one.
//
//  * Reductions: see allreduce() — every access to the shared accumulator is
//    under reduce_mu_, and the barriers between the three phases order
//    "last contribution" before "first copy-out" before "reset for reuse".
//
//  * Stats counters live in the Transport base as relaxed atomics: they are
//    monotonic telemetry read after run_parallel() joins (the join supplies
//    the happens-before), so no ordering stronger than relaxed is needed.
//
// Each of these arguments is encoded as a capability annotation
// (DP_GUARDED_BY below; see common/thread_annotations.hpp), so under clang
// an access that breaks the discipline is a compile error, not a TSan
// finding that depends on the schedule.
class World final : public Transport {
 public:
  explicit World(int nranks)
      : nranks_(nranks), mailboxes_(static_cast<std::size_t>(nranks)) {
    DP_CHECK(nranks >= 1);
  }

  const char* name() const override { return "threads"; }
  int size() const override { return nranks_; }

  SendTicket send(int src, int dest, int tag, const void* data,
                  std::size_t bytes) override {
    DP_CHECK_MSG(dest >= 0 && dest < nranks_, "send to invalid rank " << dest);
    Message msg{src, tag, {}};
    msg.payload.resize(bytes);
    // Zero-byte sends are routine (empty halo slabs, empty migrations) and
    // arrive with data == nullptr: std::vector::data() of an empty vector.
    // memcpy's pointer arguments are attribute-nonnull even for n == 0, so
    // the call itself would be UB — skip it.
    if (bytes != 0) std::memcpy(msg.payload.data(), data, bytes);
    auto& box = mailboxes_[static_cast<std::size_t>(dest)];
    {
      MutexLock lock(box.mu);
      box.queue.push_back(std::move(msg));
    }
    box.cv.notify_all();
    n_messages_.fetch_add(1, std::memory_order_relaxed);
    n_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    n_posts_immediate_.fetch_add(1, std::memory_order_relaxed);
    return kSendComplete;  // buffered: delivery responsibility transferred
  }

  std::vector<std::byte> recv(int me, int src, int tag) override {
    auto& box = mailboxes_[static_cast<std::size_t>(me)];
    MutexUniqueLock lock(box.mu);
    for (;;) {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          auto payload = std::move(it->payload);
          box.queue.erase(it);
          return payload;
        }
      }
      box.cv.wait(lock);
    }
  }

  /// Nonblocking variant of recv(): one scan under the mailbox mutex, no
  /// condvar sleep. The mutex hand-off from send() supplies the same
  /// happens-before as the blocking path, so a true return publishes the
  /// payload bytes completely.
  bool try_recv(int me, int src, int tag, std::vector<std::byte>& out) override {
    auto& box = mailboxes_[static_cast<std::size_t>(me)];
    MutexLock lock(box.mu);
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        out = std::move(it->payload);
        box.queue.erase(it);
        return true;
      }
    }
    return false;
  }

  void barrier(int /*me*/) override {
    MutexUniqueLock lock(barrier_mu_);
    const std::uint64_t gen = barrier_gen_;
    if (++barrier_count_ == nranks_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      n_barriers_.fetch_add(1, std::memory_order_relaxed);
      barrier_cv_.notify_all();
    } else {
      // Explicit loop, not wait(pred): the generation read must stay in
      // this annotated body for the capability analysis to see it.
      while (barrier_gen_ == gen) barrier_cv_.wait(lock);
    }
  }

  /// Generic allreduce over a double vector: contributions fold into a
  /// shared accumulator, separated from the copy-out and the reset by
  /// barriers. Folds in *arrival* order — deterministic only for
  /// order-insensitive reductions (max, or sums feeding telemetry); see the
  /// rank-order Transport default the process backends use instead.
  ///
  /// Happens-before chain: (1) every rank folds its vector into reduce_buf_
  /// under reduce_mu_; (2) the first barrier orders all folds before any
  /// copy-out; (3) each rank copies the result under reduce_mu_; (4) the
  /// second barrier orders all copy-outs before the reset, so a fast rank
  /// entering the *next* allreduce cannot observe a half-reset buffer;
  /// (5) the reset (first rank through, guarded by reduce_pending_ != 0)
  /// and the third barrier make the buffer reusable before anyone returns.
  std::vector<double> allreduce(int me, const std::vector<double>& x,
                                bool take_max) override {
    {
      MutexLock lock(reduce_mu_);
      if (reduce_pending_ == 0) {
        reduce_buf_ = x;
      } else {
        DP_CHECK_MSG(reduce_buf_.size() == x.size(), "allreduce size mismatch across ranks");
        for (std::size_t i = 0; i < x.size(); ++i) {
          if (take_max)
            reduce_buf_[i] = std::max(reduce_buf_[i], x[i]);
          else
            reduce_buf_[i] += x[i];
        }
      }
      ++reduce_pending_;
    }
    barrier(me);  // all contributions in
    std::vector<double> out;
    {
      MutexLock lock(reduce_mu_);
      out = reduce_buf_;
    }
    barrier(me);  // all copies out before the buffer is reused
    {
      MutexLock lock(reduce_mu_);
      if (reduce_pending_ != 0) {
        reduce_pending_ = 0;
        n_reductions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    barrier(me);
    return out;
  }

 private:
  struct Mailbox {
    Mutex mu;
    CondVar cv;
    std::deque<Message> queue DP_GUARDED_BY(mu);
  };

  int nranks_;
  std::vector<Mailbox> mailboxes_;

  Mutex barrier_mu_;
  CondVar barrier_cv_;
  int barrier_count_ DP_GUARDED_BY(barrier_mu_) = 0;
  std::uint64_t barrier_gen_ DP_GUARDED_BY(barrier_mu_) = 0;

  Mutex reduce_mu_;
  std::vector<double> reduce_buf_ DP_GUARDED_BY(reduce_mu_);
  int reduce_pending_ DP_GUARDED_BY(reduce_mu_) = 0;
};

int Communicator::size() const { return transport_->size(); }

void Communicator::send(int dest, int tag, const void* data, std::size_t bytes) {
  // Blocking-API contract is "buffered": the payload is copied before the
  // call returns on every backend, so a deferred flush (tcp) needs no wait
  // here — the transport owns the bytes until they drain.
  (void)transport_->send(rank_, dest, tag, data, bytes);
}

std::vector<std::byte> Communicator::recv(int src, int tag) {
  return transport_->recv(rank_, src, tag);
}

bool Communicator::try_recv(int src, int tag, std::vector<std::byte>& out) {
  return transport_->try_recv(rank_, src, tag, out);
}

Request Communicator::isend(int dest, int tag, const void* data, std::size_t bytes) {
  const SendTicket ticket = transport_->send(rank_, dest, tag, data, bytes);
  Request req;
  req.kind_ = Request::Kind::Send;
  req.comm_ = this;
  req.ticket_ = ticket;
  req.done_ = (ticket == kSendComplete);
  return req;
}

Request Communicator::irecv(int src, int tag) {
  Request req;
  req.kind_ = Request::Kind::Recv;
  req.comm_ = this;
  req.src_ = src;
  req.tag_ = tag;
  return req;
}

bool Request::test() {
  if (done_) return true;
  DP_CHECK_MSG(kind_ != Kind::None && comm_ != nullptr, "test() on an empty Request");
  if (kind_ == Kind::Send)
    done_ = comm_->transport_->send_done(ticket_);
  else
    done_ = comm_->try_recv(src_, tag_, payload_);
  return done_;
}

void Request::wait() {
  if (done_) return;
  DP_CHECK_MSG(kind_ != Kind::None && comm_ != nullptr, "wait() on an empty Request");
  if (kind_ == Kind::Send) {
    comm_->transport_->send_wait(ticket_);
  } else {
    payload_ = comm_->recv(src_, tag_);
  }
  done_ = true;
}

std::vector<std::byte> Request::take() {
  DP_CHECK_MSG(kind_ == Kind::Recv, "take() is only valid on an irecv Request");
  wait();
  kind_ = Kind::None;  // consumed: a second take() is a usage error
  done_ = false;
  comm_ = nullptr;
  return std::move(payload_);
}

void Communicator::barrier() { transport_->barrier(rank_); }

std::vector<double> Communicator::broadcast(const std::vector<double>& x, int root) {
  // Built on tagged point-to-point: root sends to everyone (self included).
  constexpr int kTag = 1 << 20;
  if (rank_ == root)
    for (int r = 0; r < size(); ++r) send_vec(r, kTag, x);
  return recv_vec<double>(root, kTag);
}

std::vector<double> Communicator::gatherv(const std::vector<double>& x, int root) {
  constexpr int kTag = (1 << 20) + 1;
  send_vec(root, kTag, x);
  std::vector<double> out;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      // recv() matches by source, so rank order is preserved.
      const auto part = recv_vec<double>(r, kTag);
      out.insert(out.end(), part.begin(), part.end());
    }
  }
  return out;
}

double Communicator::allreduce_sum(double x) {
  return transport_->allreduce(rank_, {x}, /*take_max=*/false)[0];
}

std::vector<double> Communicator::allreduce_sum(const std::vector<double>& x) {
  return transport_->allreduce(rank_, x, /*take_max=*/false);
}

std::uint64_t Communicator::allreduce_sum(std::uint64_t x) {
  return static_cast<std::uint64_t>(
      transport_->allreduce(rank_, {static_cast<double>(x)}, /*take_max=*/false)[0]);
}

double Communicator::allreduce_max(double x) {
  return transport_->allreduce(rank_, {x}, /*take_max=*/true)[0];
}

CommStats Communicator::stats() const { return transport_->stats(); }

const char* Communicator::transport_name() const { return transport_->name(); }

CommStats run_parallel(int nranks, const std::function<void(Communicator&)>& fn) {
  World world(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &fn, &errors, r] {
      Communicator comm(&world, r);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  return world.stats();
}

}  // namespace dp::par
