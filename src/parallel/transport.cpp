#include "parallel/transport.hpp"

#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "parallel/minimpi.hpp"

namespace dp::par {

// Default collectives over tagged p2p, usable by any backend.
//
// Shape: a gather to rank 0 (in rank order) followed by a broadcast from
// rank 0. Tags live in the reserved kCollectiveTag space so they can never
// collide with application traffic, and each collective round-trips through
// rank 0 before anyone returns — which is also the synchronization argument:
// rank 0 receives from every rank (their contribution happens-before its
// send of the result/release), and every rank receives rank 0's reply
// (rank 0's fold happens-before their return). FIFO matching per (src, tag)
// keeps back-to-back collectives on the same tags correctly paired.

void Transport::barrier(int me) {
  constexpr int kArrive = kCollectiveTag;
  constexpr int kRelease = kCollectiveTag + 1;
  const int n = size();
  if (me == 0) {
    std::vector<std::byte> scratch;
    for (int r = 1; r < n; ++r) (void)recv(0, r, kArrive);
    for (int r = 1; r < n; ++r) send(0, r, kRelease, nullptr, 0);
  } else {
    send(me, 0, kArrive, nullptr, 0);
    (void)recv(me, 0, kRelease);
  }
  n_barriers_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<double> Transport::allreduce(int me, const std::vector<double>& x,
                                         bool take_max) {
  constexpr int kContrib = kCollectiveTag + 2;
  constexpr int kResult = kCollectiveTag + 3;
  const int n = size();
  std::vector<double> out;
  if (me == 0) {
    out = x;
    for (int r = 1; r < n; ++r) {
      const auto bytes = recv(0, r, kContrib);
      DP_CHECK_MSG(bytes.size() == x.size() * sizeof(double),
                   "allreduce size mismatch across ranks");
      std::vector<double> part(x.size());
      if (!bytes.empty()) std::memcpy(part.data(), bytes.data(), bytes.size());
      // Rank-order fold: deterministic regardless of message arrival order.
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (take_max)
          out[i] = std::max(out[i], part[i]);
        else
          out[i] += part[i];
      }
    }
    for (int r = 1; r < n; ++r)
      send(0, r, kResult, out.data(), out.size() * sizeof(double));
  } else {
    send(me, 0, kContrib, x.data(), x.size() * sizeof(double));
    const auto bytes = recv(me, 0, kResult);
    DP_CHECK_MSG(bytes.size() == x.size() * sizeof(double),
                 "allreduce result size mismatch");
    out.resize(x.size());
    if (!bytes.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
  }
  n_reductions_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

TransportKind parse_transport_kind(const std::string& s) {
  if (s == "threads") return TransportKind::Threads;
  if (s == "shm") return TransportKind::Shm;
  if (s == "tcp") return TransportKind::Tcp;
  DP_CHECK_MSG(false, "unknown transport '" << s << "' (threads|shm|tcp)");
  return TransportKind::Threads;
}

TransportConfig transport_config_from_env() {
  TransportConfig cfg;
  if (const char* v = std::getenv("DP_TRANSPORT")) cfg.kind = parse_transport_kind(v);
  if (const char* v = std::getenv("DP_RANK")) cfg.rank = std::atoi(v);
  if (const char* v = std::getenv("DP_WORLD")) cfg.world = std::atoi(v);
  if (const char* v = std::getenv("DP_RENDEZVOUS")) cfg.rendezvous = v;
  if (const char* v = std::getenv("DP_TIMEOUT")) cfg.timeout_seconds = std::atof(v);
  return cfg;
}

ProcessGroup::ProcessGroup(const TransportConfig& cfg) : rank_(cfg.rank) {
  DP_CHECK_MSG(cfg.world >= 1, "world size must be at least 1");
  DP_CHECK_MSG(cfg.rank >= 0 && cfg.rank < cfg.world,
               "rank " << cfg.rank << " outside world of " << cfg.world);
  switch (cfg.kind) {
    case TransportKind::Shm:
      transport_ = make_shm_transport(cfg);
      break;
    case TransportKind::Tcp:
      transport_ = make_tcp_transport(cfg);
      break;
    case TransportKind::Threads:
      DP_CHECK_MSG(false,
                   "threads transport has no process bootstrap — use "
                   "run_parallel()");
      break;
  }
  comm_.reset(new Communicator(transport_.get(), cfg.rank));
}

ProcessGroup::~ProcessGroup() = default;

}  // namespace dp::par
