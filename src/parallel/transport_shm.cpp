// POSIX shared-memory transport: one segment of N*N SPSC byte rings.
//
// Layout: a Header page, then one Ring per (src, dest) pair. Ring (i, j) is
// written only by rank i's process and read only by rank j's process, so
// each ring is a textbook single-producer single-consumer byte queue and
// the only cross-process synchronization is its head/tail atomic pair:
//
//   * head counts bytes ever written, tail bytes ever consumed (both
//     monotonic; the byte at stream position p lives at data[p % capacity]).
//   * Producer: reads tail (acquire — frees observed only after the
//     consumer's copy-out completed), writes payload bytes, then publishes
//     with head.store(release). Consumer: head.load(acquire) makes those
//     payload bytes visible before it copies them out, then retires space
//     with tail.store(release). This acquire/release pairing is the entire
//     happens-before argument for message payloads; there are no locks.
//
// Messages are framed [u32 tag][u32 len][len payload bytes] and may be
// larger than the ring: both ends treat the ring as a byte *stream* (the
// producer spins for space in chunks, the consumer reassembles partial
// frames), so capacity bounds in-flight bytes, not message size. To make
// that deadlock-free the producer drains its own incoming rings while it
// waits for space — two ranks mid-exchange can always absorb each other's
// backlog. A producer or consumer that makes no progress for
// timeout_seconds raises DP_CHECK (dumping the flight recorders) instead of
// hanging: shared memory has no EOF, so a dead peer is only observable as
// silence.
//
// Bootstrap: rank 0 creates the segment (O_EXCL after unlinking any stale
// one), zero-fills it via ftruncate, writes the geometry and publishes with
// a release store of the magic; peers poll shm_open + an acquire load of
// the magic, then everyone spins on the `attached` counter as a join
// barrier. Rank 0 unlinks once all ranks are mapped, so the name is gone
// even if a later crash skips destructors (the mapping itself lives until
// the last munmap).
//
// One Transport instance serves exactly one rank; the in-process threads
// backend (minimpi.cpp) is what serves a whole world from one object.
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "parallel/transport.hpp"

namespace dp::par {

namespace {

constexpr std::uint64_t kMagic = 0x64706d645f73686dULL;  // "dpmd_shm"
constexpr std::size_t kAlign = 64;                       // cache-line separation
constexpr std::size_t kFrameHeader = 2 * sizeof(std::uint32_t);
constexpr std::size_t kDefaultRingBytes = std::size_t{1} << 20;

std::size_t align_up(std::size_t x) { return (x + kAlign - 1) & ~(kAlign - 1); }

struct SegmentHeader {
  std::atomic<std::uint64_t> magic;
  std::uint32_t nranks;
  std::uint32_t ring_bytes;
  std::atomic<std::uint32_t> attached;
};

struct RingHeader {
  std::atomic<std::uint64_t> head;  ///< bytes ever published (producer-owned)
  std::atomic<std::uint64_t> tail;  ///< bytes ever consumed (consumer-owned)
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm transport needs address-free 64-bit atomics");
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shm transport needs address-free 32-bit atomics");

struct PendingMessage {
  int src;
  int tag;
  std::vector<std::byte> payload;
};

class ShmTransport final : public Transport {
 public:
  explicit ShmTransport(const TransportConfig& cfg)
      : me_(cfg.rank), nranks_(cfg.world), timeout_(cfg.timeout_seconds) {
    DP_CHECK_MSG(!cfg.rendezvous.empty(), "shm transport needs a rendezvous name");
    // Normalize: POSIX wants exactly one leading slash and no others.
    name_.push_back('/');
    for (char c : cfg.rendezvous)
      if (c != '/') name_.push_back(c);

    ring_bytes_ = kDefaultRingBytes;
    if (const char* v = std::getenv("DP_SHM_RING_BYTES")) {
      ring_bytes_ = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
      DP_CHECK_MSG(ring_bytes_ >= 4096, "DP_SHM_RING_BYTES too small");
    }

    if (me_ == 0) {
      create_segment();
    } else {
      open_segment();
    }
    carry_.resize(static_cast<std::size_t>(nranks_));

    // Join barrier: every rank must be mapped before any traffic flows (a
    // message to a not-yet-attached rank would land fine, but the unlink
    // below must not outrun a peer's shm_open).
    header()->attached.fetch_add(1, std::memory_order_acq_rel);
    WallTimer deadline;
    while (header()->attached.load(std::memory_order_acquire) !=
           static_cast<std::uint32_t>(nranks_)) {
      DP_CHECK_MSG(deadline.seconds() < timeout_,
                   "shm bootstrap timeout: " << header()->attached.load()
                                             << "/" << nranks_ << " ranks attached");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (me_ == 0) ::shm_unlink(name_.c_str());
  }

  ~ShmTransport() override {
    if (base_ != nullptr) ::munmap(base_, map_bytes_);
    if (fd_ >= 0) ::close(fd_);
  }

  const char* name() const override { return "shm"; }
  int size() const override { return nranks_; }

  SendTicket send(int src, int dest, int tag, const void* data,
                  std::size_t bytes) override {
    DP_CHECK_MSG(src == me_, "shm transport serves rank " << me_ << " only");
    DP_CHECK_MSG(dest >= 0 && dest < nranks_, "send to invalid rank " << dest);
    n_messages_.fetch_add(1, std::memory_order_relaxed);
    n_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    n_posts_immediate_.fetch_add(1, std::memory_order_relaxed);
    if (dest == me_) {
      // Self-sends (broadcast roots) never touch the rings.
      PendingMessage msg{src, tag, {}};
      msg.payload.resize(bytes);
      if (bytes != 0) std::memcpy(msg.payload.data(), data, bytes);
      inbox_.push_back(std::move(msg));
      return kSendComplete;
    }
    std::uint32_t hdr[2] = {static_cast<std::uint32_t>(tag),
                            static_cast<std::uint32_t>(bytes)};
    DP_CHECK_MSG(bytes == hdr[1], "message too large for shm framing");
    stream_write(dest, hdr, sizeof(hdr));
    if (bytes != 0) stream_write(dest, data, bytes);
    n_wire_bytes_.fetch_add(kFrameHeader + bytes, std::memory_order_relaxed);
    return kSendComplete;  // bytes are in the ring: delivery handed off
  }

  std::vector<std::byte> recv(int me, int src, int tag) override {
    DP_CHECK_MSG(me == me_, "shm transport serves rank " << me_ << " only");
    std::vector<std::byte> out;
    WallTimer idle;
    std::uint32_t spins = 0;
    for (;;) {
      if (match(src, tag, out)) return out;
      if (drain() != 0) {
        idle.reset();
        spins = 0;
        continue;
      }
      DP_CHECK_MSG(idle.seconds() < timeout_,
                   "shm transport timeout: rank " << me_ << " waited "
                                                  << timeout_ << "s for (src " << src
                                                  << ", tag " << tag
                                                  << ") — peer process dead?");
      backoff(spins++);
    }
  }

  bool try_recv(int me, int src, int tag, std::vector<std::byte>& out) override {
    DP_CHECK_MSG(me == me_, "shm transport serves rank " << me_ << " only");
    drain();
    return match(src, tag, out);
  }

 private:
  SegmentHeader* header() { return reinterpret_cast<SegmentHeader*>(base_); }

  RingHeader* ring_header(int src, int dest) {
    auto* p = static_cast<std::byte*>(base_) + align_up(sizeof(SegmentHeader)) +
              (static_cast<std::size_t>(src) * static_cast<std::size_t>(nranks_) +
               static_cast<std::size_t>(dest)) *
                  ring_stride_;
    return reinterpret_cast<RingHeader*>(p);
  }
  std::byte* ring_data(int src, int dest) {
    return reinterpret_cast<std::byte*>(ring_header(src, dest)) +
           align_up(sizeof(RingHeader));
  }

  std::size_t segment_bytes() const {
    return align_up(sizeof(SegmentHeader)) +
           static_cast<std::size_t>(nranks_) * static_cast<std::size_t>(nranks_) *
               ring_stride_;
  }

  void create_segment() {
    ring_stride_ = align_up(align_up(sizeof(RingHeader)) + ring_bytes_);
    map_bytes_ = segment_bytes();
    ::shm_unlink(name_.c_str());  // stale segment from a crashed run
    fd_ = ::shm_open(name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    DP_CHECK_MSG(fd_ >= 0, "shm_open(create " << name_ << ") failed: " << std::strerror(errno));
    DP_CHECK_MSG(::ftruncate(fd_, static_cast<off_t>(map_bytes_)) == 0,
                 "ftruncate(" << map_bytes_ << ") failed: " << std::strerror(errno));
    base_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
    DP_CHECK_MSG(base_ != MAP_FAILED, "mmap failed: " << std::strerror(errno));
    // ftruncate zero-fills, which is a valid initial state for every ring
    // (head == tail == 0) and for `attached`; only the geometry must be
    // written before the magic is released.
    header()->nranks = static_cast<std::uint32_t>(nranks_);
    header()->ring_bytes = static_cast<std::uint32_t>(ring_bytes_);
    header()->magic.store(kMagic, std::memory_order_release);
  }

  void open_segment() {
    WallTimer deadline;
    for (;;) {
      fd_ = ::shm_open(name_.c_str(), O_RDWR, 0600);
      if (fd_ >= 0) break;
      DP_CHECK_MSG(deadline.seconds() < timeout_,
                   "shm bootstrap timeout waiting for segment " << name_);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    // Map the header page first to learn the geometry (rank 0 may have
    // configured a non-default ring size), then remap the full segment.
    void* probe = ::mmap(nullptr, align_up(sizeof(SegmentHeader)),
                         PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
    DP_CHECK_MSG(probe != MAP_FAILED, "mmap(header) failed: " << std::strerror(errno));
    auto* hdr = reinterpret_cast<SegmentHeader*>(probe);
    while (hdr->magic.load(std::memory_order_acquire) != kMagic) {
      DP_CHECK_MSG(deadline.seconds() < timeout_,
                   "shm bootstrap timeout waiting for segment init");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    DP_CHECK_MSG(hdr->nranks == static_cast<std::uint32_t>(nranks_),
                 "shm world size mismatch: segment says " << hdr->nranks
                                                          << ", DP_WORLD says " << nranks_);
    ring_bytes_ = hdr->ring_bytes;
    ::munmap(probe, align_up(sizeof(SegmentHeader)));
    ring_stride_ = align_up(align_up(sizeof(RingHeader)) + ring_bytes_);
    map_bytes_ = segment_bytes();
    base_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
    DP_CHECK_MSG(base_ != MAP_FAILED, "mmap failed: " << std::strerror(errno));
  }

  /// Producer side of the (me_ -> dest) ring: appends `bytes` to the byte
  /// stream, spinning for space (and draining our own inboxes, see the
  /// header comment's deadlock argument) when the consumer lags.
  void stream_write(int dest, const void* data, std::size_t bytes) {
    RingHeader* rh = ring_header(me_, dest);
    std::byte* buf = ring_data(me_, dest);
    const auto* src_bytes = static_cast<const std::byte*>(data);
    std::size_t written = 0;
    WallTimer idle;
    std::uint32_t spins = 0;
    while (written < bytes) {
      const std::uint64_t head = rh->head.load(std::memory_order_relaxed);
      const std::uint64_t tail = rh->tail.load(std::memory_order_acquire);
      const std::size_t space = ring_bytes_ - static_cast<std::size_t>(head - tail);
      if (space == 0) {
        if (drain() != 0) {
          idle.reset();
          spins = 0;
          continue;
        }
        DP_CHECK_MSG(idle.seconds() < timeout_,
                     "shm transport timeout: rank " << me_ << " blocked sending to rank "
                                                    << dest << " (ring full "
                                                    << timeout_ << "s) — peer process dead?");
        backoff(spins++);
        continue;
      }
      const std::size_t chunk = std::min(space, bytes - written);
      const std::size_t at = static_cast<std::size_t>(head % ring_bytes_);
      const std::size_t first = std::min(chunk, ring_bytes_ - at);
      std::memcpy(buf + at, src_bytes + written, first);
      if (chunk > first) std::memcpy(buf, src_bytes + written + first, chunk - first);
      rh->head.store(head + chunk, std::memory_order_release);
      written += chunk;
      idle.reset();
      spins = 0;
    }
  }

  /// Consumer side: moves every available byte of every incoming ring into
  /// the per-source carry buffer, then lifts completed frames into inbox_.
  /// Returns the number of bytes consumed (0 = no progress).
  std::size_t drain() {
    std::size_t consumed = 0;
    for (int src = 0; src < nranks_; ++src) {
      if (src == me_) continue;
      RingHeader* rh = ring_header(src, me_);
      const std::uint64_t head = rh->head.load(std::memory_order_acquire);
      const std::uint64_t tail = rh->tail.load(std::memory_order_relaxed);
      const std::size_t avail = static_cast<std::size_t>(head - tail);
      if (avail == 0) continue;
      const std::byte* buf = ring_data(src, me_);
      auto& carry = carry_[static_cast<std::size_t>(src)];
      const std::size_t old = carry.size();
      carry.resize(old + avail);
      const std::size_t at = static_cast<std::size_t>(tail % ring_bytes_);
      const std::size_t first = std::min(avail, ring_bytes_ - at);
      std::memcpy(carry.data() + old, buf + at, first);
      if (avail > first) std::memcpy(carry.data() + old + first, buf, avail - first);
      rh->tail.store(tail + avail, std::memory_order_release);
      consumed += avail;

      // Lift complete frames out of the carry buffer.
      std::size_t cursor = 0;
      while (carry.size() - cursor >= kFrameHeader) {
        std::uint32_t hdr[2];
        std::memcpy(hdr, carry.data() + cursor, sizeof(hdr));
        const std::size_t len = hdr[1];
        if (carry.size() - cursor < kFrameHeader + len) break;
        PendingMessage msg{src, static_cast<int>(hdr[0]), {}};
        msg.payload.resize(len);
        if (len != 0)
          std::memcpy(msg.payload.data(), carry.data() + cursor + kFrameHeader, len);
        inbox_.push_back(std::move(msg));
        cursor += kFrameHeader + len;
      }
      if (cursor != 0) carry.erase(carry.begin(), carry.begin() + static_cast<std::ptrdiff_t>(cursor));
    }
    return consumed;
  }

  bool match(int src, int tag, std::vector<std::byte>& out) {
    for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        out = std::move(it->payload);
        inbox_.erase(it);
        return true;
      }
    }
    return false;
  }

  static void backoff(std::uint32_t spins) {
    if (spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  int me_;
  int nranks_;
  double timeout_;
  std::string name_;
  std::size_t ring_bytes_ = kDefaultRingBytes;
  std::size_t ring_stride_ = 0;
  std::size_t map_bytes_ = 0;
  int fd_ = -1;
  void* base_ = nullptr;

  // Single-threaded per process (only this rank's thread calls in; the
  // cross-process edges are the ring atomics above) — no locks needed.
  std::deque<PendingMessage> inbox_;
  std::vector<std::vector<std::byte>> carry_;  ///< partial frames per source
};

}  // namespace

std::unique_ptr<Transport> make_shm_transport(const TransportConfig& cfg) {
  return std::make_unique<ShmTransport>(cfg);
}

}  // namespace dp::par
